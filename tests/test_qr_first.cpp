/// QR-first tall-path parity suite (core/svd.cpp qr_first_solve):
///
///   * singular values bit-identical to the generic accumulate-through path
///     across FP16/FP32/FP64 x aspect ratios straddling the threshold x
///     ValuesOnly/Thin/Full jobs;
///   * accuracy gates (reconstruction residual and orthogonality defect
///     <= 50*eps*n) on the COMPOSED U = Q * U_R, tall and wide, Thin and
///     Full, with and without auto_scale;
///   * path selection: SvdConfig::qr_first_aspect gates the path, the
///     report's qr_first flag records it, ValuesOnly never takes it;
///   * batched: ragged tall/square batches mix paths per problem under all
///     four schedules, with ErrorPolicy::Isolate containment;
///   * memory: a 16384 x 256 FP32 Thin solve peaks at O(m_pad * n_pad)
///     accumulator bytes (matrix_peak_bytes high-water counter), far below
///     the m_pad^2 buffer the generic path would allocate.

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "common/linalg_ref.hpp"
#include "core/batch.hpp"
#include "core/svd.hpp"
#include "core/tuner.hpp"
#include "test_util.hpp"
#include "tile/tile_layout.hpp"

using namespace unisvd;

namespace {

SvdConfig vec_config(SvdJob job = SvdJob::Thin, int ts = 8) {
  SvdConfig cfg;
  cfg.kernels.tilesize = ts;
  cfg.kernels.colperblock = std::min(8, ts);
  cfg.job = job;
  // The QR-first shapes here have min(m, n) at or below the default fused
  // threshold; disable that path so the suite pins the QR-first machinery.
  cfg.small_svd_threshold = 0;
  return cfg;
}

/// The path forced ON (any tall vector solve) or OFF (generic always).
SvdConfig forced(SvdConfig cfg, bool qr_first) {
  cfg.qr_first_aspect = qr_first ? 1.0 : core::kQrFirstAspectNever;
  return cfg;
}

/// || A - U diag(values) V^T ||_F / || A ||_F from the report's factors.
template <class T>
double reconstruction_residual(ConstMatrixView<T> a, const SvdReport& rep) {
  const Matrix<double> ad = ref::to_double(a);
  Matrix<double> us(rep.u.rows(), rep.vt.rows(), 0.0);
  for (index_t j = 0; j < us.cols(); ++j) {
    if (j >= static_cast<index_t>(rep.values.size())) continue;
    const double s = rep.values[static_cast<std::size_t>(j)];
    for (index_t i = 0; i < us.rows(); ++i) {
      us(i, j) = rep.u(i, j) * s;
    }
  }
  const Matrix<double> prod =
      ref::matmul(ConstMatrixView<double>(us.view()), rep.vt.view());
  const double denom = ref::fro_norm(ad.view());
  const double diff = ref::fro_diff(ad.view(), prod.view());
  return denom == 0.0 ? diff : diff / denom;
}

/// The acceptance bound: 50 * eps * n at the precision's storage epsilon.
template <class T>
double accept_tol(index_t m, index_t n) {
  return 50.0 * precision_traits<T>::storage_eps * static_cast<double>(std::max(m, n));
}

template <class T>
void expect_valid_svd(ConstMatrixView<T> a, const SvdReport& rep, SvdJob job,
                      const char* tag) {
  const std::string what = std::string(tag) + " [" + to_string(job) + "]";
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t k = std::min(m, n);
  ASSERT_EQ(rep.values.size(), static_cast<std::size_t>(k)) << what;
  if (job == SvdJob::Full) {
    ASSERT_EQ(rep.u.rows(), m) << what;
    ASSERT_EQ(rep.u.cols(), m) << what;
    ASSERT_EQ(rep.vt.rows(), n) << what;
    ASSERT_EQ(rep.vt.cols(), n) << what;
  } else {
    ASSERT_EQ(rep.u.rows(), m) << what;
    ASSERT_EQ(rep.u.cols(), k) << what;
    ASSERT_EQ(rep.vt.rows(), k) << what;
    ASSERT_EQ(rep.vt.cols(), n) << what;
  }
  EXPECT_LE(reconstruction_residual(a, rep), accept_tol<T>(m, n)) << what;
  EXPECT_LE(ref::orthogonality_defect(rep.u.view()), accept_tol<T>(m, n)) << what;
  EXPECT_LE(ref::orthogonality_defect(rep.vt.view().transposed()),
            accept_tol<T>(m, n))
      << what;
  for (std::size_t i = 1; i < rep.values.size(); ++i) {
    EXPECT_LE(rep.values[i], rep.values[i - 1]) << what;
  }
}

}  // namespace

template <class T>
class QrFirstTyped : public ::testing::Test {};
using StorageTypes = ::testing::Types<Half, float, double>;
TYPED_TEST_SUITE(QrFirstTyped, StorageTypes);

TYPED_TEST(QrFirstTyped, ValuesBitIdenticalAcrossPathsShapesAndJobs) {
  // The acceptance invariant: whichever path solves a shape, the singular
  // values are THE SAME BITS — the QR-first panel factorization runs the
  // identical kernel sequence as the generic tall QR, and the R it hands to
  // the square pipeline re-pads to the identical working matrix.
  const std::pair<index_t, index_t> shapes[] = {
      {40, 24},   // aspect 1.67, just above the default threshold
      {48, 32},   // aspect 1.5, just below it
      {96, 24},   // aspect 4
      {24, 64},   // wide (runs on the lazy transpose)
  };
  for (const auto& [m, n] : shapes) {
    const auto a = testutil::convert<TypeParam>(
        testutil::random_matrix(m, n, 900 + static_cast<std::uint64_t>(m * 3 + n)));
    for (const SvdJob job : {SvdJob::Thin, SvdJob::Full}) {
      const auto generic =
          svd_values_report<TypeParam>(a.view(), forced(vec_config(job), false));
      const auto qrfirst =
          svd_values_report<TypeParam>(a.view(), forced(vec_config(job), true));
      EXPECT_FALSE(generic.qr_first);
      EXPECT_TRUE(qrfirst.qr_first);
      ASSERT_EQ(generic.values.size(), qrfirst.values.size());
      for (std::size_t i = 0; i < generic.values.size(); ++i) {
        EXPECT_EQ(generic.values[i], qrfirst.values[i])
            << m << "x" << n << " [" << to_string(job) << "] value " << i;
      }
      // And both match the historic values-only fast path bit-for-bit.
      const auto plain = svd_values_report<TypeParam>(
          a.view(), forced(vec_config(SvdJob::ValuesOnly), true));
      EXPECT_FALSE(plain.qr_first);  // ValuesOnly never composes factors
      for (std::size_t i = 0; i < plain.values.size(); ++i) {
        EXPECT_EQ(plain.values[i], qrfirst.values[i])
            << m << "x" << n << " [" << to_string(job) << "] vs values-only " << i;
      }
    }
  }
}

TYPED_TEST(QrFirstTyped, ComposedFactorsPassAccuracyGates) {
  // Residual + orthogonality of the composed U = Q * U_R within 50*eps*n,
  // tall and wide, Thin and Full — same gates as the generic vector suite.
  const auto tall = testutil::convert<TypeParam>(testutil::random_matrix(96, 32, 910));
  const auto tall_thin =
      svd_values_report<TypeParam>(tall.view(), forced(vec_config(SvdJob::Thin), true));
  EXPECT_TRUE(tall_thin.qr_first);
  expect_valid_svd<TypeParam>(tall.view(), tall_thin, SvdJob::Thin, "tall 96x32");

  const auto tall_full = svd_values_report<TypeParam>(
      tall.view(), forced(vec_config(SvdJob::Full), true));
  EXPECT_TRUE(tall_full.qr_first);
  expect_valid_svd<TypeParam>(tall.view(), tall_full, SvdJob::Full, "tall 96x32");

  const auto wide = testutil::convert<TypeParam>(testutil::random_matrix(24, 72, 911));
  const auto wide_thin =
      svd_values_report<TypeParam>(wide.view(), forced(vec_config(SvdJob::Thin), true));
  EXPECT_TRUE(wide_thin.qr_first);
  expect_valid_svd<TypeParam>(wide.view(), wide_thin, SvdJob::Thin, "wide 24x72");

  const auto wide_full = svd_values_report<TypeParam>(
      wide.view(), forced(vec_config(SvdJob::Full), true));
  EXPECT_TRUE(wide_full.qr_first);
  expect_valid_svd<TypeParam>(wide.view(), wide_full, SvdJob::Full, "wide 24x72");
}

TYPED_TEST(QrFirstTyped, PaddedTallShapeStaysValid) {
  // Extents that do not divide the tile grid: padding isolation must hold
  // through panel QR, the recursive R solve, AND the backward replay.
  const auto a = testutil::convert<TypeParam>(testutil::random_matrix(70, 18, 912));
  const auto rep = svd_values_report<TypeParam>(
      a.view(), forced(vec_config(SvdJob::Thin, 16), true));
  EXPECT_TRUE(rep.qr_first);
  expect_valid_svd<TypeParam>(a.view(), rep, SvdJob::Thin, "padded 70x18 ts16");

  const auto full = svd_values_report<TypeParam>(
      a.view(), forced(vec_config(SvdJob::Full, 16), true));
  EXPECT_TRUE(full.qr_first);
  expect_valid_svd<TypeParam>(a.view(), full, SvdJob::Full, "padded 70x18 ts16");
}

TEST(QrFirst, DefaultAspectSelectsThePath) {
  // The default threshold (1.6) routes 2:1 tall vector solves through
  // QR-first, leaves 1.5:1 and square ones generic, and never applies to
  // ValuesOnly (the historic fast path stays byte-identical).
  const auto tall = testutil::convert<float>(testutil::random_matrix(48, 24, 920));
  EXPECT_TRUE(svd_values_report<float>(tall.view(), vec_config()).qr_first);
  EXPECT_FALSE(
      svd_values_report<float>(tall.view(), vec_config(SvdJob::ValuesOnly)).qr_first);

  const auto mild = testutil::convert<float>(testutil::random_matrix(48, 32, 921));
  EXPECT_FALSE(svd_values_report<float>(mild.view(), vec_config()).qr_first);

  const auto square = testutil::convert<float>(testutil::random_matrix(32, 32, 922));
  EXPECT_FALSE(svd_values_report<float>(square.view(), vec_config()).qr_first);

  // Invalid thresholds are rejected up front.
  SvdConfig bad = vec_config();
  bad.qr_first_aspect = 0.0;
  EXPECT_THROW((void)svd_values_report<float>(tall.view(), bad), Error);
}

TEST(QrFirst, AutoScaleComposesScaleInvariantFactors) {
  auto ad = testutil::random_matrix(80, 24, 923);
  for (index_t j = 0; j < ad.cols(); ++j) {
    for (index_t i = 0; i < ad.rows(); ++i) ad(i, j) *= 64.0;
  }
  const auto a = testutil::convert<float>(ad);
  auto cfg = forced(vec_config(), true);
  cfg.auto_scale = true;
  const auto rep = svd_values_report<float>(a.view(), cfg);
  EXPECT_TRUE(rep.qr_first);
  EXPECT_NE(rep.scale_factor, 1.0);
  expect_valid_svd<float>(a.view(), rep, SvdJob::Thin, "auto-scaled 80x24");
}

TEST(QrFirst, DeterministicAcrossThreadCounts) {
  const auto a = testutil::convert<float>(testutil::random_matrix(80, 24, 924));
  ka::CpuBackend be1(1);
  ka::CpuBackend be4(4);
  const auto r1 = svd_values_report<float>(a.view(), vec_config(), be1);
  const auto r4 = svd_values_report<float>(a.view(), vec_config(), be4);
  EXPECT_TRUE(r1.qr_first);
  EXPECT_TRUE(r4.qr_first);
  for (std::size_t i = 0; i < r1.values.size(); ++i) {
    EXPECT_EQ(r1.values[i], r4.values[i]);
  }
  EXPECT_EQ(ref::fro_diff(r1.u.view(), r4.u.view()), 0.0);
  EXPECT_EQ(ref::fro_diff(r1.vt.view(), r4.vt.view()), 0.0);
}

TEST(QrFirstBatched, RaggedBatchMixesPathsUnderEverySchedule) {
  // A ragged batch mixing tall (QR-first), square and mildly-tall (generic)
  // problems plus one poisoned matrix: per-problem path choice under all
  // four schedules, Isolate containment, and bit-identity with the solo
  // solves whichever schedule ran.
  std::vector<Matrix<float>> problems;
  problems.push_back(testutil::convert<float>(testutil::random_matrix(96, 24, 930)));
  problems.push_back(testutil::convert<float>(testutil::random_matrix(32, 32, 931)));
  problems.push_back(testutil::convert<float>(testutil::random_matrix(64, 24, 932)));
  problems.push_back(testutil::convert<float>(testutil::random_matrix(40, 32, 933)));
  problems.push_back(testutil::convert<float>(testutil::random_matrix(24, 56, 934)));
  problems[3](1, 1) = std::numeric_limits<float>::quiet_NaN();
  const auto views = testutil::views_of(problems);
  const bool expect_qr_first[] = {true, false, true, false, true};
  ka::CpuBackend backend(4);

  BatchConfig cfg;
  cfg.svd = vec_config();
  cfg.crossover_n = 48;
  cfg.on_error = ErrorPolicy::Isolate;
  for (const auto schedule : {BatchSchedule::Auto, BatchSchedule::InterProblem,
                              BatchSchedule::IntraProblem, BatchSchedule::Mixed}) {
    cfg.schedule = schedule;
    const auto rep = svd_batched_report<float>(views, cfg, backend);
    ASSERT_EQ(rep.reports.size(), problems.size());
    EXPECT_EQ(rep.failed_count(), 1u) << to_string(schedule);
    for (std::size_t p = 0; p < problems.size(); ++p) {
      if (p == 3) {
        EXPECT_EQ(rep.reports[p].status, SvdStatus::NonFinite);
        EXPECT_TRUE(rep.reports[p].values.empty());
        EXPECT_FALSE(rep.reports[p].qr_first);
        continue;
      }
      EXPECT_EQ(rep.reports[p].status, SvdStatus::Ok);
      EXPECT_EQ(rep.reports[p].qr_first, expect_qr_first[p])
          << to_string(schedule) << " problem " << p;
      expect_valid_svd<float>(views[p], rep.reports[p], SvdJob::Thin, "batched");
      const auto solo = svd_values_report<float>(views[p], cfg.svd);
      ASSERT_EQ(solo.values.size(), rep.reports[p].values.size());
      for (std::size_t i = 0; i < solo.values.size(); ++i) {
        EXPECT_EQ(solo.values[i], rep.reports[p].values[i])
            << to_string(schedule) << " problem " << p;
      }
      EXPECT_EQ(ref::fro_diff(solo.u.view(), rep.reports[p].u.view()), 0.0);
      EXPECT_EQ(ref::fro_diff(solo.vt.view(), rep.reports[p].vt.view()), 0.0);
    }
  }
}

TEST(QrFirst, PeakAccumulatorMemoryIsPanelSizedAt16384x256) {
  // The acceptance case: a 16384 x 256 FP32 Thin solve must take the
  // QR-first path and keep peak live Matrix bytes at O(m_pad * n_pad) —
  // the generic path's m_pad^2 compute-precision accumulator ALONE would
  // be 1 GiB, an order of magnitude past this budget.
  const index_t m = 16384;
  const index_t n = 256;
  rnd::Xoshiro256 rng(940);
  Matrix<float> a(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) a(i, j) = static_cast<float>(rng.normal());
  }

  SvdConfig cfg;
  cfg.job = SvdJob::Thin;
  const index_t ts = cfg.kernels.tilesize;
  const index_t mpad = tile::TileLayout::make(m, ts).n;
  const index_t npad = tile::TileLayout::make(n, ts).n;

  // Budget: a generous constant number of m_pad x n_pad panels (storage
  // panel, tau blocks, composition target, double-held report factors,
  // plus every n_pad-sized buffer) — measured peak is ~86 MB against the
  // 168 MB budget, while the generic path's square accumulator alone
  // (m_pad^2 floats) is ~1074 MB.
  const std::size_t budget = static_cast<std::size_t>(40 * mpad * npad);
  ASSERT_LT(budget, static_cast<std::size_t>(mpad * mpad) * sizeof(float));

  matrix_reset_peak();
  const std::size_t before = matrix_peak_bytes();
  const auto rep = svd_values_report<float>(a.view(), cfg);
  const std::size_t peak = matrix_peak_bytes();

  EXPECT_TRUE(rep.qr_first);
  ASSERT_EQ(rep.values.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(rep.u.rows(), m);
  EXPECT_EQ(rep.u.cols(), n);
  EXPECT_GE(peak, before);
  EXPECT_LE(peak, budget) << "peak " << peak / 1e6 << " MB exceeds the "
                          << budget / 1e6 << " MB O(m_pad*n_pad) budget";
}

TEST(QrFirst, GenericTallPathPeakMemoryIsPanelSized) {
  // The generic (below-aspect) tall vector path now also composes U by
  // blocked reflector replay: forced OFF the QR-first path, an 8192 x 256
  // FP32 Thin solve must stay within the O(m_pad * n_pad) budget — the
  // historic eager-mirror m_pad^2 compute-precision accumulator ALONE
  // (8192^2 floats, ~268 MB) would blow it.
  const index_t m = 8192;
  const index_t n = 256;
  rnd::Xoshiro256 rng(941);
  Matrix<float> a(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) a(i, j) = static_cast<float>(rng.normal());
  }

  SvdConfig cfg;
  cfg.job = SvdJob::Thin;
  cfg.qr_first_aspect = core::kQrFirstAspectNever;  // pin the generic path
  const index_t ts = cfg.kernels.tilesize;
  const index_t mpad = tile::TileLayout::make(m, ts).n;
  const index_t npad = tile::TileLayout::make(n, ts).n;
  const std::size_t budget = static_cast<std::size_t>(40 * mpad * npad);
  ASSERT_LT(budget, static_cast<std::size_t>(mpad * mpad) * sizeof(float));

  matrix_reset_peak();
  const std::size_t before = matrix_peak_bytes();
  const auto rep = svd_values_report<float>(a.view(), cfg);
  const std::size_t peak = matrix_peak_bytes();

  EXPECT_FALSE(rep.qr_first);
  expect_valid_svd<float>(a.view(), rep, SvdJob::Thin, "generic tall peak");
  EXPECT_GE(peak, before);
  EXPECT_LE(peak, budget) << "peak " << peak / 1e6 << " MB exceeds the "
                          << budget / 1e6 << " MB O(m_pad*n_pad) budget";
}

TEST(QrFirst, HighWaterCounterTracksLiveMatrices) {
  const std::size_t live0 = matrix_live_bytes();
  matrix_reset_peak();
  EXPECT_EQ(matrix_peak_bytes(), live0);
  {
    Matrix<double> a(64, 64);
    EXPECT_GE(matrix_live_bytes(), live0 + 64 * 64 * sizeof(double));
    EXPECT_GE(matrix_peak_bytes(), live0 + 64 * 64 * sizeof(double));
  }
  EXPECT_EQ(matrix_live_bytes(), live0);       // destruction released it
  EXPECT_GE(matrix_peak_bytes(), live0 + 64 * 64 * sizeof(double));  // peak sticks
  matrix_reset_peak();
  EXPECT_EQ(matrix_peak_bytes(), live0);
}

TEST(QrFirst, TunerLearnsAndPersistsAspect) {
  // learn_qr_first_aspect measures both paths, deposits a threshold into
  // the table, and tuned_batch_config plumbs it back into SvdConfig.
  ka::CpuBackend backend(2);
  SvdConfig probe_cfg;
  probe_cfg.kernels.tilesize = 8;
  probe_cfg.kernels.colperblock = 8;
  const auto result =
      core::tune_qr_first_aspect<float>(backend, 24, {2.0, 4.0}, 1, probe_cfg);
  ASSERT_EQ(result.samples.size(), 2u);
  for (const auto& s : result.samples) {
    EXPECT_GT(s.generic_seconds, 0.0);
    EXPECT_GT(s.qr_first_seconds, 0.0);
    EXPECT_GT(s.m, 24);
  }
  // Learned value is one of the probed aspects or the "never" sentinel.
  EXPECT_TRUE(result.aspect == 2.0 || result.aspect == 4.0 ||
              result.aspect == core::kQrFirstAspectNever);

  core::TuningTable table;
  const double learned = core::learn_qr_first_aspect<float>(
      table, backend, 24, {2.0, 4.0}, 1, probe_cfg);
  ASSERT_TRUE(table.qr_first_aspect("cpu", Precision::FP32).has_value());
  EXPECT_EQ(*table.qr_first_aspect("cpu", Precision::FP32), learned);
  const BatchConfig tuned = core::tuned_batch_config(table, backend, Precision::FP32);
  EXPECT_EQ(tuned.svd.qr_first_aspect, learned);
  // FP16 falls back to the FP32 entry; unknown backends keep the default.
  EXPECT_EQ(core::tuned_batch_config(table, backend, Precision::FP16)
                .svd.qr_first_aspect,
            learned);
  ka::SerialBackend serial;
  EXPECT_EQ(core::tuned_batch_config(table, serial, Precision::FP32)
                .svd.qr_first_aspect,
            SvdConfig{}.qr_first_aspect);
}
