/// Deterministic tests of the asynchronous serving layer
/// (serve::SvdService): byte identity with the synchronous solvers, queue
/// admission (block/reject, full queue, post-shutdown), round-robin tenant
/// fairness and priority/deadline ordering through the manual drain path
/// (workers = 0 makes the service a synchronous object), result caching and
/// in-flight coalescing, fault containment for poison jobs, move-not-copy
/// result delivery, graceful shutdown, and the stats conservation laws.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "serve/svd_service.hpp"
#include "test_util.hpp"

using namespace unisvd;
using serve::AdmissionPolicy;
using serve::DrainMode;
using serve::JobHandle;
using serve::ServeConfig;
using serve::ServeStats;
using serve::SubmitOptions;
using serve::SvdService;

namespace {

/// Manual-drain service: no workers, no cache — every test controls
/// execution and sharing explicitly unless it opts back in.
ServeConfig manual_config() {
  ServeConfig cfg;
  cfg.workers = 0;
  cfg.cache_capacity = 0;
  return cfg;
}

Matrix<float> test_matrix(index_t rows, index_t cols, std::uint64_t seed) {
  return testutil::convert<float>(testutil::random_matrix(rows, cols, seed));
}

void drain_all(SvdService& svc) {
  while (svc.drain_once() > 0) {
  }
}

}  // namespace

TEST(Serve, SubmitWaitMatchesSyncByteIdentical) {
  const Matrix<float> a = test_matrix(40, 40, 7);
  SvdService svc(manual_config());
  JobHandle h = svc.submit<float>(a.view());
  EXPECT_FALSE(h.done());
  EXPECT_EQ(h.try_get(), nullptr);
  ASSERT_EQ(svc.drain_once(), 1u);
  ASSERT_TRUE(h.done());

  const SvdReport& async_rep = h.report();
  EXPECT_EQ(async_rep.status, SvdStatus::Ok);
  const SvdReport sync_rep = svd_values_report<float>(a.view());
  ASSERT_EQ(async_rep.values.size(), sync_rep.values.size());
  for (std::size_t i = 0; i < sync_rep.values.size(); ++i) {
    EXPECT_EQ(async_rep.values[i], sync_rep.values[i]) << "i=" << i;
  }
}

TEST(Serve, SubmitCopiesInputCallerBufferMayDie) {
  SvdService svc(manual_config());
  JobHandle h;
  std::vector<double> sync_values;
  {
    const Matrix<float> a = test_matrix(24, 24, 11);
    sync_values = svd_values_report<float>(a.view()).values;
    h = svc.submit<float>(a.view());
  }  // the caller's matrix is destroyed before the job runs
  ASSERT_EQ(svc.drain_once(), 1u);
  EXPECT_EQ(h.report().values, sync_values);
}

TEST(Serve, TransposedViewMatchesCompactSubmission) {
  // A lazy-transposed view must solve (and cache-key) as its logical matrix.
  const Matrix<float> a = test_matrix(20, 32, 13);
  ServeConfig cfg = manual_config();
  cfg.cache_capacity = 8;
  SvdService svc(cfg);
  JobHandle h = svc.submit<float>(a.view().transposed());
  ASSERT_EQ(svc.drain_once(), 1u);
  const SvdReport sync_rep =
      svd_values_report<float>(ConstMatrixView<float>(a.view()).transposed());
  EXPECT_EQ(h.report().values, sync_rep.values);

  // Same logical content through a compact copy: must be a cache hit.
  Matrix<float> compact(32, 20);
  for (index_t j = 0; j < 20; ++j) {
    for (index_t i = 0; i < 32; ++i) compact(i, j) = a(j, i);
  }
  JobHandle h2 = svc.submit<float>(compact.view());
  EXPECT_TRUE(h2.done());
  EXPECT_EQ(svc.stats().cache_hits, 1u);
}

TEST(Serve, DrainOnceRoundRobinFairness) {
  ServeConfig cfg = manual_config();
  cfg.max_wave = 3;
  SvdService svc(cfg);

  // Tenant 5 floods; tenants 1 and 2 submit one job each, AFTER the flood.
  std::vector<JobHandle> flood;
  for (int i = 0; i < 6; ++i) {
    flood.push_back(svc.submit<float>(test_matrix(8, 8, 100 + i).view(),
                                      SvdConfig{}, SubmitOptions{.tenant = 5}));
  }
  JobHandle t1 = svc.submit<float>(test_matrix(8, 8, 200).view(), SvdConfig{},
                                   SubmitOptions{.tenant = 1});
  JobHandle t2 = svc.submit<float>(test_matrix(8, 8, 201).view(), SvdConfig{},
                                   SubmitOptions{.tenant = 2});

  // One wave of 3, round-robin across tenant ids: every tenant is served
  // once despite tenant 5 holding 6 of the 8 queued jobs.
  ASSERT_EQ(svc.drain_once(), 3u);
  EXPECT_TRUE(t1.done());
  EXPECT_TRUE(t2.done());
  const ServeStats s = svc.stats();
  EXPECT_EQ(s.tenants.at(1).completed, 1u);
  EXPECT_EQ(s.tenants.at(2).completed, 1u);
  EXPECT_EQ(s.tenants.at(5).completed, 1u);
  drain_all(svc);
  for (auto& h : flood) EXPECT_EQ(h.status(), SvdStatus::Ok);
}

TEST(Serve, PriorityThenDeadlineThenSubmissionOrder) {
  ServeConfig cfg = manual_config();
  cfg.max_wave = 1;
  SvdService svc(cfg);

  JobHandle low = svc.submit<float>(test_matrix(8, 8, 1).view(), SvdConfig{},
                                    SubmitOptions{.priority = 0});
  JobHandle late = svc.submit<float>(
      test_matrix(8, 8, 2).view(), SvdConfig{},
      SubmitOptions{.priority = 1, .deadline_seconds = 1e6});
  JobHandle soon = svc.submit<float>(
      test_matrix(8, 8, 3).view(), SvdConfig{},
      SubmitOptions{.priority = 1, .deadline_seconds = 60.0});

  // Wave 1: highest priority wins; among equals the earlier deadline.
  ASSERT_EQ(svc.drain_once(), 1u);
  EXPECT_TRUE(soon.done());
  EXPECT_FALSE(late.done());
  EXPECT_FALSE(low.done());
  ASSERT_EQ(svc.drain_once(), 1u);
  EXPECT_TRUE(late.done());
  EXPECT_FALSE(low.done());
  ASSERT_EQ(svc.drain_once(), 1u);
  EXPECT_TRUE(low.done());
}

TEST(Serve, CacheHitAndInFlightCoalescing) {
  ServeConfig cfg = manual_config();
  cfg.cache_capacity = 8;
  SvdService svc(cfg);
  const Matrix<float> a = test_matrix(16, 16, 21);

  JobHandle first = svc.submit<float>(a.view());
  JobHandle twin = svc.submit<float>(a.view());  // identical, still queued
  EXPECT_EQ(svc.stats().coalesced, 1u);
  EXPECT_EQ(svc.queue_depth(), 1u);  // ONE physical job for both handles

  ASSERT_EQ(svc.drain_once(), 1u);
  ASSERT_TRUE(first.done());
  ASSERT_TRUE(twin.done());
  EXPECT_EQ(first.report().values, twin.report().values);

  JobHandle hit = svc.submit<float>(a.view());  // after completion: a hit
  EXPECT_TRUE(hit.done());
  const ServeStats s = svc.stats();
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.completed, 1u);  // one solve served three submissions
  EXPECT_EQ(hit.report().values, first.report().values);
}

TEST(Serve, CacheKeyedByConfigNotJustContent) {
  ServeConfig cfg = manual_config();
  cfg.cache_capacity = 8;
  SvdService svc(cfg);
  const Matrix<float> a = test_matrix(16, 16, 22);

  JobHandle h1 = svc.submit<float>(a.view());
  ASSERT_EQ(svc.drain_once(), 1u);

  SvdConfig other;  // different dispatch threshold => different result path
  other.small_svd_threshold = 0;
  JobHandle h2 = svc.submit<float>(a.view(), other);
  EXPECT_FALSE(h2.done());  // not a hit: the config is part of the key
  ASSERT_EQ(svc.drain_once(), 1u);
  EXPECT_EQ(svc.stats().cache_hits, 0u);
  EXPECT_EQ(h1.report().status, SvdStatus::Ok);
  EXPECT_EQ(h2.report().status, SvdStatus::Ok);
  EXPECT_TRUE(h1.report().small_path);
  EXPECT_FALSE(h2.report().small_path);
}

TEST(Serve, CacheEvictionIsLru) {
  ServeConfig cfg = manual_config();
  cfg.cache_capacity = 2;
  SvdService svc(cfg);
  const Matrix<float> a = test_matrix(12, 12, 31);
  const Matrix<float> b = test_matrix(12, 12, 32);
  const Matrix<float> c = test_matrix(12, 12, 33);

  (void)svc.submit<float>(a.view());
  drain_all(svc);
  (void)svc.submit<float>(b.view());
  drain_all(svc);
  // Touch a (hit) so b becomes least recently used, then insert c.
  JobHandle touch = svc.submit<float>(a.view());
  EXPECT_TRUE(touch.done());
  (void)svc.submit<float>(c.view());
  drain_all(svc);
  EXPECT_EQ(svc.stats().cache_entries, 2u);

  JobHandle a_again = svc.submit<float>(a.view());
  EXPECT_TRUE(a_again.done());  // survived: recently used
  JobHandle b_again = svc.submit<float>(b.view());
  EXPECT_FALSE(b_again.done());  // evicted: must re-solve
  drain_all(svc);
}

TEST(Serve, PoisonJobIsIsolatedAndNeverCached) {
  ServeConfig cfg = manual_config();
  cfg.cache_capacity = 8;
  SvdService svc(cfg);
  Matrix<float> poison = test_matrix(12, 12, 41);
  poison(3, 4) = std::numeric_limits<float>::quiet_NaN();
  const Matrix<float> good = test_matrix(12, 12, 42);

  JobHandle bad = svc.submit<float>(poison.view());
  JobHandle ok = svc.submit<float>(good.view());
  drain_all(svc);

  EXPECT_EQ(bad.status(), SvdStatus::NonFinite);
  EXPECT_TRUE(bad.report().values.empty());
  EXPECT_FALSE(bad.report().status_message.empty());
  EXPECT_EQ(ok.status(), SvdStatus::Ok);

  // Failures are not cached: resubmitting the poison solves (and fails)
  // again instead of replaying a cached failure.
  JobHandle bad2 = svc.submit<float>(poison.view());
  EXPECT_FALSE(bad2.done());
  drain_all(svc);
  EXPECT_EQ(bad2.status(), SvdStatus::NonFinite);
  const ServeStats s = svc.stats();
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.failed, 2u);
  EXPECT_EQ(s.cache_entries, 1u);  // only the good result
}

TEST(Serve, RejectWhenFull) {
  ServeConfig cfg = manual_config();
  cfg.queue_capacity = 2;
  cfg.admission = AdmissionPolicy::Reject;
  SvdService svc(cfg);

  JobHandle h1 = svc.submit<float>(test_matrix(8, 8, 51).view());
  JobHandle h2 = svc.submit<float>(test_matrix(8, 8, 52).view());
  JobHandle h3 = svc.submit<float>(test_matrix(8, 8, 53).view());
  EXPECT_TRUE(h3.done());  // rejected immediately, no solve
  EXPECT_EQ(h3.status(), SvdStatus::Rejected);
  EXPECT_TRUE(h3.report().values.empty());

  drain_all(svc);
  EXPECT_EQ(h1.status(), SvdStatus::Ok);
  EXPECT_EQ(h2.status(), SvdStatus::Ok);
  const ServeStats s = svc.stats();
  EXPECT_EQ(s.accepted, 2u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.completed, 2u);
}

TEST(Serve, BlockWhenFullAppliesBackpressure) {
  // Real workers + a tiny queue: Block admission must throttle the
  // submitting thread, and every job must still complete.
  ServeConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 2;
  cfg.max_wave = 1;
  cfg.admission = AdmissionPolicy::Block;
  cfg.cache_capacity = 0;
  SvdService svc(cfg);

  std::vector<JobHandle> handles;
  for (int i = 0; i < 12; ++i) {
    handles.push_back(svc.submit<float>(test_matrix(10, 10, 60 + i).view()));
  }
  for (auto& h : handles) EXPECT_EQ(h.status(), SvdStatus::Ok);
  const ServeStats s = svc.stats();
  EXPECT_EQ(s.accepted, 12u);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_LE(s.queue_depth_peak, 2u);
}

TEST(Serve, SubmitAfterShutdownIsRejected) {
  SvdService svc(manual_config());
  JobHandle before = svc.submit<float>(test_matrix(8, 8, 71).view());
  svc.shutdown(DrainMode::Cancel);
  JobHandle after = svc.submit<float>(test_matrix(8, 8, 72).view());

  EXPECT_EQ(before.status(), SvdStatus::Cancelled);
  ASSERT_TRUE(after.done());
  EXPECT_EQ(after.status(), SvdStatus::Rejected);
  const ServeStats s = svc.stats();
  EXPECT_EQ(s.cancelled, 1u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(svc.drain_once(), 0u);  // nothing left, and nothing crashes
}

TEST(Serve, ShutdownDrainCompletesQueuedJobs) {
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.cache_capacity = 0;
  SvdService svc(cfg);
  std::vector<JobHandle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(svc.submit<float>(test_matrix(12, 12, 80 + i).view()));
  }
  svc.shutdown(DrainMode::Drain);
  for (auto& h : handles) EXPECT_EQ(h.status(), SvdStatus::Ok);
  const ServeStats s = svc.stats();
  EXPECT_EQ(s.accepted, 8u);
  EXPECT_EQ(s.completed, 8u);
  EXPECT_EQ(s.cancelled, 0u);
  EXPECT_EQ(s.queue_depth, 0u);
}

TEST(Serve, ShutdownCancelFailsQueuedJobs) {
  SvdService svc(manual_config());
  std::vector<JobHandle> handles;
  for (int i = 0; i < 5; ++i) {
    handles.push_back(svc.submit<float>(test_matrix(12, 12, 90 + i).view()));
  }
  svc.shutdown(DrainMode::Cancel);
  for (auto& h : handles) {
    EXPECT_EQ(h.status(), SvdStatus::Cancelled);
    EXPECT_TRUE(h.report().values.empty());
  }
  const ServeStats s = svc.stats();
  EXPECT_EQ(s.accepted, 5u);
  EXPECT_EQ(s.cancelled, 5u);
  EXPECT_EQ(s.completed, 0u);
  EXPECT_EQ(s.queue_depth, 0u);
}

TEST(Serve, BatchOfOneTakesDrainPath) {
  // The scheduling-engine edge case: a wave of exactly one job.
  ServeConfig cfg = manual_config();
  cfg.max_wave = 16;
  SvdService svc(cfg);
  const Matrix<float> a = test_matrix(48, 20, 95);  // rectangular, tall
  JobHandle h = svc.submit<float>(a.view());
  ASSERT_EQ(svc.drain_once(), 1u);
  EXPECT_EQ(h.report().values, svd_values_report<float>(a.view()).values);
  EXPECT_EQ(svc.stats().waves, 1u);
}

TEST(Serve, ZeroSizeViewCompletesWithInvalidInput) {
  SvdService svc(manual_config());
  const ConstMatrixView<float> empty(nullptr, 0, 5, 1);
  JobHandle h = svc.submit<float>(empty);
  ASSERT_EQ(svc.drain_once(), 1u);
  EXPECT_EQ(h.status(), SvdStatus::InvalidInput);
  EXPECT_TRUE(h.report().values.empty());
  EXPECT_FALSE(h.report().status_message.empty());
}

TEST(Serve, TruncatedSubmissionMatchesSync) {
  const Matrix<float> a = test_matrix(60, 24, 97);
  SvdService svc(manual_config());
  TruncConfig tc;
  tc.rank = 4;
  serve::TruncJobHandle h = svc.submit_truncated<float>(a.view(), tc);
  ASSERT_EQ(svc.drain_once(), 1u);
  const TruncReport& async_rep = h.report();
  ASSERT_EQ(async_rep.status, SvdStatus::Ok);
  const TruncReport sync_rep = svd_truncated_report<float>(a.view(), tc);
  EXPECT_EQ(async_rep.values, sync_rep.values);  // same seed => bit identical
  EXPECT_EQ(async_rep.rank, sync_rep.rank);
}

TEST(Serve, TakeMovesResultOutOfPrivateState) {
  // The no-copy delivery contract: with the cache bypassed, the report the
  // worker published is the very buffer take() hands back (pointer
  // identity), not a copy.
  SvdService svc(manual_config());
  SvdConfig cfg;
  cfg.job = SvdJob::Thin;
  JobHandle h = svc.submit<float>(test_matrix(20, 20, 99).view(), cfg,
                                  SubmitOptions{.use_cache = false});
  ASSERT_EQ(svc.drain_once(), 1u);
  const double* u_buffer = h.report().u.data();
  ASSERT_NE(u_buffer, nullptr);
  const SvdReport taken = h.take();
  EXPECT_EQ(taken.u.data(), u_buffer);  // moved, not copied
}

TEST(Serve, TakeCopiesWhenStateIsShared) {
  ServeConfig cfg = manual_config();
  cfg.cache_capacity = 4;
  SvdService svc(cfg);
  const Matrix<float> a = test_matrix(16, 16, 101);
  JobHandle h = svc.submit<float>(a.view());  // cache holds the state too
  ASSERT_EQ(svc.drain_once(), 1u);
  const SvdReport taken = h.take();
  EXPECT_FALSE(taken.values.empty());
  // The cached state is intact: a resubmission still hits and reads values.
  JobHandle hit = svc.submit<float>(a.view());
  ASSERT_TRUE(hit.done());
  EXPECT_EQ(hit.report().values, taken.values);
}

TEST(Serve, ExpiredJobIsShedNotSolved) {
  // A job whose deadline has already passed when a worker claims it is
  // failed with Expired instead of solved: under overload the capacity
  // goes to jobs that can still be on time.
  ServeConfig cfg = manual_config();
  cfg.cache_capacity = 8;
  SvdService svc(cfg);
  const Matrix<float> a = test_matrix(16, 16, 130);

  JobHandle dead = svc.submit<float>(
      a.view(), SvdConfig{}, SubmitOptions{.deadline_seconds = -1.0});
  JobHandle live = svc.submit<float>(test_matrix(16, 16, 131).view());
  EXPECT_FALSE(dead.done());  // shedding happens at claim, not at submit
  drain_all(svc);

  EXPECT_EQ(dead.status(), SvdStatus::Expired);
  EXPECT_TRUE(dead.report().values.empty());
  EXPECT_FALSE(dead.report().status_message.empty());
  EXPECT_EQ(live.status(), SvdStatus::Ok);

  // The shed job's pending cache anchor was withdrawn: an identical
  // resubmission with a generous deadline solves instead of inheriting
  // the expiry.
  JobHandle retry = svc.submit<float>(a.view());
  EXPECT_FALSE(retry.done());  // not a hit, not coalesced onto the corpse
  drain_all(svc);
  EXPECT_EQ(retry.status(), SvdStatus::Ok);

  const ServeStats s = svc.stats();
  EXPECT_EQ(s.expired, 1u);
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.coalesced, 0u);
  // Conservation: accepted == completed + cancelled + expired.
  EXPECT_EQ(s.accepted, s.completed + s.cancelled + s.expired);
  EXPECT_EQ(s.completed, 2u);
}

TEST(Serve, ExpiredJobsDoNotConsumeWaveSlots) {
  // max_wave = 2 with two expired jobs ahead of two live ones: one drain
  // must shed both corpses AND solve both live jobs — shedding is free.
  ServeConfig cfg = manual_config();
  cfg.max_wave = 2;
  SvdService svc(cfg);

  JobHandle d1 = svc.submit<float>(
      test_matrix(8, 8, 140).view(), SvdConfig{},
      SubmitOptions{.priority = 2, .deadline_seconds = -1.0});
  JobHandle d2 = svc.submit<float>(
      test_matrix(8, 8, 141).view(), SvdConfig{},
      SubmitOptions{.priority = 2, .deadline_seconds = -1.0});
  JobHandle l1 = svc.submit<float>(test_matrix(8, 8, 142).view());
  JobHandle l2 = svc.submit<float>(test_matrix(8, 8, 143).view());

  EXPECT_EQ(svc.drain_once(), 4u);  // 2 shed + 2 solved, one wave
  EXPECT_EQ(d1.status(), SvdStatus::Expired);
  EXPECT_EQ(d2.status(), SvdStatus::Expired);
  EXPECT_EQ(l1.status(), SvdStatus::Ok);
  EXPECT_EQ(l2.status(), SvdStatus::Ok);
  const ServeStats s = svc.stats();
  EXPECT_EQ(s.expired, 2u);
  EXPECT_EQ(s.completed, 2u);
  EXPECT_EQ(s.waves, 1u);
  EXPECT_EQ(s.queue_depth, 0u);
}

TEST(Serve, SheddingDisabledSolvesExpiredJobs) {
  // shed_expired = false restores the historic behaviour: a stale job is
  // still solved and reports Ok.
  ServeConfig cfg = manual_config();
  cfg.shed_expired = false;
  SvdService svc(cfg);
  JobHandle stale = svc.submit<float>(
      test_matrix(12, 12, 150).view(), SvdConfig{},
      SubmitOptions{.deadline_seconds = -1.0});
  ASSERT_EQ(svc.drain_once(), 1u);
  EXPECT_EQ(stale.status(), SvdStatus::Ok);
  EXPECT_EQ(svc.stats().expired, 0u);
}

TEST(Serve, StatsConservationAndQueueGauges) {
  ServeConfig cfg = manual_config();
  cfg.queue_capacity = 4;
  cfg.admission = AdmissionPolicy::Reject;
  cfg.cache_capacity = 4;
  SvdService svc(cfg);
  const Matrix<float> a = test_matrix(10, 10, 111);

  (void)svc.submit<float>(a.view());                       // accepted
  (void)svc.submit<float>(a.view());                       // coalesced
  (void)svc.submit<float>(test_matrix(10, 10, 112).view()); // accepted
  EXPECT_EQ(svc.queue_depth(), 2u);
  drain_all(svc);
  (void)svc.submit<float>(a.view());                       // cache hit
  for (int i = 0; i < 6; ++i) {  // 4 accepted, 2 rejected (capacity 4)
    (void)svc.submit<float>(test_matrix(10, 10, 120 + i).view());
  }
  drain_all(svc);

  const ServeStats s = svc.stats();
  // Every submission is exactly one of the four admission outcomes.
  EXPECT_EQ(s.accepted + s.rejected + s.cache_hits + s.coalesced, 10u);
  EXPECT_EQ(s.accepted, 6u);
  EXPECT_EQ(s.rejected, 2u);
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.coalesced, 1u);
  // Idle service: everything accepted was completed (nothing cancelled).
  EXPECT_EQ(s.completed, s.accepted);
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_EQ(s.queue_depth_peak, 4u);
  EXPECT_GE(s.waves, 1u);
  EXPECT_GT(s.tenants.at(0).total_latency_seconds, 0.0);
  EXPECT_GE(s.tenants.at(0).max_latency_seconds, 0.0);
}
