/// Tests of the batched SVD subsystem (core/batch.hpp): agreement with the
/// sequential svd_values loop across precisions for uniform and ragged
/// batches, schedule resolution (Auto crossover, forced inter/intra,
/// demotion without a pool), edge cases (empty batch, single element),
/// error propagation, stage-time aggregation, and the inter-problem path
/// actually spreading across pool threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "core/batch.hpp"
#include "rand/matrix_gen.hpp"
#include "test_util.hpp"

using namespace unisvd;

namespace {

SvdConfig small_config(int ts = 8) {
  SvdConfig cfg;
  cfg.kernels.tilesize = ts;
  cfg.kernels.colperblock = std::min(8, ts);
  return cfg;
}

BatchConfig batch_config(BatchSchedule schedule, int ts = 8) {
  BatchConfig cfg;
  cfg.svd = small_config(ts);
  cfg.schedule = schedule;
  return cfg;
}

/// Ragged batch: mixed square sizes (padding, n < tilesize) plus tall and
/// wide rectangles.
template <class T>
std::vector<Matrix<T>> make_ragged_problems(std::uint64_t seed) {
  const std::pair<index_t, index_t> shapes[] = {
      {16, 16}, {5, 5}, {24, 24}, {1, 1}, {33, 33}, {24, 10}, {10, 24}};
  std::vector<Matrix<T>> problems;
  std::uint64_t s = seed;
  for (const auto& [m, n] : shapes) {
    problems.push_back(testutil::convert<T>(testutil::random_matrix(m, n, s++)));
  }
  return problems;
}

using testutil::views_of;

/// Per-precision agreement tolerance between the batched solve and the
/// sequential loop. The two run identical deterministic kernels, so they
/// should agree far inside storage accuracy.
template <class T>
double agree_tol() {
  return 8.0 * precision_traits<T>::storage_eps;
}

template <class T>
void expect_matches_sequential(const std::vector<Matrix<T>>& problems,
                               const BatchConfig& cfg, ka::Backend& backend) {
  const auto views = views_of(problems);
  const auto batched = svd_values_batched<T>(views, cfg, backend);
  ASSERT_EQ(batched.size(), problems.size());
  for (std::size_t p = 0; p < problems.size(); ++p) {
    const auto seq = svd_values<T>(problems[p].view(), cfg.svd, backend);
    ASSERT_EQ(batched[p].size(), seq.size()) << "problem " << p;
    const double scale =
        std::max(1.0, seq.empty() ? 1.0 : std::abs(static_cast<double>(seq[0])));
    for (std::size_t i = 0; i < seq.size(); ++i) {
      EXPECT_NEAR(static_cast<double>(batched[p][i]), static_cast<double>(seq[i]),
                  agree_tol<T>() * scale)
          << "problem " << p << " sigma_" << i;
    }
  }
}

}  // namespace

template <class T>
class BatchedSvdTyped : public ::testing::Test {};
using StorageTypes = ::testing::Types<Half, float, double>;
TYPED_TEST_SUITE(BatchedSvdTyped, StorageTypes);

TYPED_TEST(BatchedSvdTyped, UniformBatchMatchesSequential) {
  std::vector<Matrix<TypeParam>> problems;
  for (std::uint64_t s = 0; s < 6; ++s) {
    problems.push_back(testutil::convert<TypeParam>(testutil::random_matrix(24, 24, 100 + s)));
  }
  ka::CpuBackend backend(4);
  for (const auto schedule :
       {BatchSchedule::Auto, BatchSchedule::InterProblem, BatchSchedule::IntraProblem,
        BatchSchedule::Mixed}) {
    expect_matches_sequential<TypeParam>(problems, batch_config(schedule), backend);
  }
}

TYPED_TEST(BatchedSvdTyped, RaggedBatchMatchesSequential) {
  const auto problems = make_ragged_problems<TypeParam>(7);
  ka::CpuBackend backend(4);
  for (const auto schedule :
       {BatchSchedule::Auto, BatchSchedule::InterProblem, BatchSchedule::IntraProblem,
        BatchSchedule::Mixed}) {
    expect_matches_sequential<TypeParam>(problems, batch_config(schedule), backend);
  }
}

TEST(BatchedSvd, EmptyBatchReturnsEmptyReport) {
  const std::vector<ConstMatrixView<double>> none;
  const auto rep = svd_values_batched_report<double>(none, batch_config(BatchSchedule::Auto));
  EXPECT_TRUE(rep.reports.empty());
  EXPECT_TRUE(rep.schedules.empty());
  EXPECT_EQ(rep.threads_used, 0u);
  EXPECT_TRUE(svd_values_batched<double>(none).empty());
}

TEST(BatchedSvd, SingleElementBatchMatchesSingleSolve) {
  const auto a = testutil::random_matrix(20, 20, 11);
  const std::vector<ConstMatrixView<double>> batch{a.view()};
  const auto cfg = batch_config(BatchSchedule::Auto);
  const auto rep = svd_values_batched_report<double>(batch, cfg);
  ASSERT_EQ(rep.reports.size(), 1u);
  const auto seq = svd_values_report<double>(a.view(), cfg.svd);
  ASSERT_EQ(rep.reports[0].values.size(), seq.values.size());
  for (std::size_t i = 0; i < seq.values.size(); ++i) {
    EXPECT_DOUBLE_EQ(rep.reports[0].values[i], seq.values[i]);
  }
  // A lone small problem gains nothing from the pool: Auto keeps it intra.
  EXPECT_EQ(rep.schedules[0], BatchSchedule::IntraProblem);
}

TEST(BatchedSvd, AutoResolvesSchedulePerProblem) {
  const auto small = testutil::convert<double>(testutil::random_matrix(16, 16, 1));
  const auto small2 = testutil::convert<double>(testutil::random_matrix(16, 16, 2));
  const auto large = testutil::convert<double>(testutil::random_matrix(64, 64, 3));
  const std::vector<ConstMatrixView<double>> batch{small.view(), large.view(),
                                                   small2.view()};
  auto cfg = batch_config(BatchSchedule::Auto);
  cfg.crossover_n = 32;

  // This batch is *ragged* (one problem above the crossover, two at or
  // below it): Auto promotes the whole batch to the Mixed work-stealing
  // schedule — large problems become stealing slots, small ones stay
  // inter-problem.
  ka::CpuBackend cpu(4);
  const auto rep = svd_values_batched_report<double>(batch, cfg, cpu);
  ASSERT_EQ(rep.schedules.size(), 3u);
  EXPECT_EQ(rep.schedules[0], BatchSchedule::InterProblem);
  EXPECT_EQ(rep.schedules[1], BatchSchedule::Mixed);
  EXPECT_EQ(rep.schedules[2], BatchSchedule::InterProblem);

  // Homogeneous batches keep the classic per-problem resolution: all-large
  // goes intra (nothing to drain inter-problem behind the stealing slots)…
  const std::vector<ConstMatrixView<double>> all_large{large.view(), large.view()};
  const auto large_rep = svd_values_batched_report<double>(all_large, cfg, cpu);
  for (const auto s : large_rep.schedules) EXPECT_EQ(s, BatchSchedule::IntraProblem);
  // …and all-small goes inter (no stealing source, the pool is saturated).
  const std::vector<ConstMatrixView<double>> all_small{small.view(), small2.view()};
  const auto small_rep = svd_values_batched_report<double>(all_small, cfg, cpu);
  for (const auto s : small_rep.schedules) EXPECT_EQ(s, BatchSchedule::InterProblem);

  // Without a pool every problem demotes to intra, under any requested
  // schedule, and results are unchanged.
  ka::SerialBackend serial;
  for (const auto schedule :
       {BatchSchedule::Auto, BatchSchedule::InterProblem, BatchSchedule::IntraProblem}) {
    auto c = cfg;
    c.schedule = schedule;
    const auto srep = svd_values_batched_report<double>(batch, c, serial);
    for (const auto s : srep.schedules) EXPECT_EQ(s, BatchSchedule::IntraProblem);
    for (std::size_t p = 0; p < batch.size(); ++p) {
      ASSERT_EQ(srep.reports[p].values.size(), rep.reports[p].values.size());
      for (std::size_t i = 0; i < srep.reports[p].values.size(); ++i) {
        EXPECT_DOUBLE_EQ(srep.reports[p].values[i], rep.reports[p].values[i]);
      }
    }
  }
}

TEST(BatchedSvd, InterProblemPathUsesMultiplePoolThreads) {
  // Dynamic chunking makes the thread assignment timing-dependent, so allow
  // a few attempts: with 64 problems and 3 idle workers woken per attempt,
  // a single-threaded run of every attempt is vanishingly unlikely.
  ka::CpuBackend backend(4);
  std::vector<Matrix<double>> problems;
  for (std::uint64_t s = 0; s < 64; ++s) {
    problems.push_back(testutil::convert<double>(testutil::random_matrix(24, 24, 200 + s)));
  }
  const auto views = views_of(problems);
  const auto cfg = batch_config(BatchSchedule::InterProblem);
  std::size_t max_threads = 0;
  for (int attempt = 0; attempt < 20 && max_threads < 2; ++attempt) {
    const auto rep = svd_values_batched_report<double>(views, cfg, backend);
    for (const auto s : rep.schedules) EXPECT_EQ(s, BatchSchedule::InterProblem);
    max_threads = std::max(max_threads, rep.threads_used);
  }
  EXPECT_GE(max_threads, 2u);
}

TEST(BatchedSvd, MixedResolvesLargeProblemsToStealingSlots) {
  const auto small = testutil::convert<double>(testutil::random_matrix(16, 16, 1));
  const auto small2 = testutil::convert<double>(testutil::random_matrix(16, 16, 2));
  const auto large = testutil::convert<double>(testutil::random_matrix(64, 64, 3));
  const std::vector<ConstMatrixView<double>> batch{small.view(), large.view(),
                                                   small2.view()};
  auto cfg = batch_config(BatchSchedule::Mixed);
  cfg.crossover_n = 32;

  ka::CpuBackend cpu(4);
  const auto rep = svd_values_batched_report<double>(batch, cfg, cpu);
  ASSERT_EQ(rep.schedules.size(), 3u);
  EXPECT_EQ(rep.schedules[0], BatchSchedule::InterProblem);
  EXPECT_EQ(rep.schedules[1], BatchSchedule::Mixed);
  EXPECT_EQ(rep.schedules[2], BatchSchedule::InterProblem);

  // Without a pool the mixed schedule demotes to sequential intra, with
  // identical results.
  ka::SerialBackend serial;
  const auto srep = svd_values_batched_report<double>(batch, cfg, serial);
  for (const auto s : srep.schedules) EXPECT_EQ(s, BatchSchedule::IntraProblem);
  for (std::size_t p = 0; p < batch.size(); ++p) {
    ASSERT_EQ(srep.reports[p].values.size(), rep.reports[p].values.size());
    for (std::size_t i = 0; i < srep.reports[p].values.size(); ++i) {
      EXPECT_DOUBLE_EQ(srep.reports[p].values[i], rep.reports[p].values[i]);
    }
  }
}

TEST(BatchedSvd, PropagatesPerProblemErrors) {
  const auto good = testutil::random_matrix(16, 16, 21);
  Matrix<double> bad(16, 16, 1.0);
  bad(3, 3) = std::numeric_limits<double>::quiet_NaN();
  const std::vector<ConstMatrixView<double>> batch{good.view(), bad.view()};
  ka::CpuBackend backend(4);
  for (const auto schedule : {BatchSchedule::InterProblem, BatchSchedule::IntraProblem,
                              BatchSchedule::Mixed}) {
    EXPECT_THROW(svd_values_batched<double>(batch, batch_config(schedule), backend),
                 Error);
  }
}

TEST(BatchedSvd, IsolatePolicyKeepsHealthyProblemsValid) {
  // The acceptance scenario: a batch with one NaN problem under Isolate
  // returns valid, sequential-identical results for every other problem.
  std::vector<Matrix<double>> problems;
  for (std::uint64_t s = 0; s < 5; ++s) {
    problems.push_back(testutil::random_matrix(24, 24, 400 + s));
  }
  problems[2](5, 7) = std::numeric_limits<double>::quiet_NaN();
  const auto views = views_of(problems);
  ka::CpuBackend backend(4);
  for (const auto schedule : {BatchSchedule::Auto, BatchSchedule::InterProblem,
                              BatchSchedule::IntraProblem, BatchSchedule::Mixed}) {
    auto cfg = batch_config(schedule);
    cfg.on_error = ErrorPolicy::Isolate;
    const auto rep = svd_values_batched_report<double>(views, cfg, backend);
    ASSERT_EQ(rep.reports.size(), 5u);
    EXPECT_FALSE(rep.all_ok());
    EXPECT_EQ(rep.failed_count(), 1u);
    EXPECT_EQ(rep.reports[2].status, SvdStatus::NonFinite);
    EXPECT_TRUE(rep.reports[2].values.empty());
    EXPECT_NE(rep.reports[2].status_message.find("problem 2"), std::string::npos);
    for (const std::size_t p : {0u, 1u, 3u, 4u}) {
      EXPECT_EQ(rep.reports[p].status, SvdStatus::Ok);
      const auto seq = svd_values_report<double>(problems[p].view(), cfg.svd, backend);
      ASSERT_EQ(rep.reports[p].values.size(), seq.values.size());
      for (std::size_t i = 0; i < seq.values.size(); ++i) {
        EXPECT_DOUBLE_EQ(rep.reports[p].values[i], seq.values[i]) << "problem " << p;
      }
    }
    // The values-only entry point mirrors the report: empty vector for the
    // failed problem, full results elsewhere.
    const auto values = svd_values_batched<double>(views, cfg, backend);
    EXPECT_TRUE(values[2].empty());
    EXPECT_EQ(values[0].size(), 24u);
  }
}

TEST(BatchedSvd, IsolateClassifiesEmptyProblemAsInvalidInput) {
  const auto good = testutil::random_matrix(12, 12, 77);
  const Matrix<double> empty(0, 0);
  const std::vector<ConstMatrixView<double>> batch{good.view(), empty.view()};
  auto cfg = batch_config(BatchSchedule::IntraProblem);
  cfg.on_error = ErrorPolicy::Isolate;
  const auto rep = svd_values_batched_report<double>(batch, cfg);
  EXPECT_EQ(rep.reports[0].status, SvdStatus::Ok);
  EXPECT_EQ(rep.reports[1].status, SvdStatus::InvalidInput);
  EXPECT_EQ(rep.failed_count(), 1u);
}

TEST(BatchedSvd, RejectsNonExecutingBackendAndBadConfig) {
  const auto a = testutil::random_matrix(8, 8, 31);
  const std::vector<ConstMatrixView<double>> batch{a.view()};
  ka::TraceBackend trace;
  EXPECT_THROW(svd_values_batched<double>(batch, {}, trace), Error);
  BatchConfig bad;
  bad.svd.kernels.tilesize = 3;
  EXPECT_THROW(svd_values_batched<double>(batch, bad), Error);
}

TEST(BatchedSvd, ReportAggregatesStageTimesAndWallClock) {
  const auto problems = make_ragged_problems<double>(41);
  const auto views = views_of(problems);
  ka::CpuBackend backend(4);
  const auto rep =
      svd_values_batched_report<double>(views, batch_config(BatchSchedule::Auto), backend);
  ASSERT_EQ(rep.reports.size(), problems.size());
  double expect_total = 0.0;
  for (const auto& r : rep.reports) expect_total += r.stage_times.total();
  // The two sums associate differently, so allow rounding slack.
  EXPECT_NEAR(rep.stage_times.total(), expect_total, 1e-12 * (1.0 + expect_total));
  EXPECT_GT(rep.stage_times.total(), 0.0);
  EXPECT_GT(rep.seconds, 0.0);
  EXPECT_GE(rep.threads_used, 1u);
}

TEST(BatchedSvd, Fp16ValuesNarrowThroughCorrectlyRoundedPath) {
  // Regression for the static_cast<T> per-element narrowing: FP16 output
  // must equal the single-rounding half_from_double of the double report,
  // bit for bit, not a double->float->half double-rounded chain.
  const auto problems = make_ragged_problems<Half>(61);
  const auto views = views_of(problems);
  ka::CpuBackend backend(4);
  const auto cfg = batch_config(BatchSchedule::Auto);
  const auto rep = svd_values_batched_report<Half>(views, cfg, backend);
  const auto values = svd_values_batched<Half>(views, cfg, backend);
  ASSERT_EQ(values.size(), rep.reports.size());
  for (std::size_t p = 0; p < values.size(); ++p) {
    ASSERT_EQ(values[p].size(), rep.reports[p].values.size());
    for (std::size_t i = 0; i < values[p].size(); ++i) {
      EXPECT_EQ(values[p][i].bits(), half_from_double(rep.reports[p].values[i]).bits())
          << "problem " << p << " sigma_" << i;
    }
  }
}

TEST(BatchedSvd, ValuesDescendingInStoragePrecision) {
  const auto problems = make_ragged_problems<Half>(51);
  const auto views = views_of(problems);
  const auto out = svd_values_batched<Half>(views, batch_config(BatchSchedule::Auto));
  ASSERT_EQ(out.size(), problems.size());
  for (std::size_t p = 0; p < out.size(); ++p) {
    const auto expect_count = static_cast<std::size_t>(
        std::min(problems[p].rows(), problems[p].cols()));
    ASSERT_EQ(out[p].size(), expect_count);
    for (std::size_t i = 1; i < out[p].size(); ++i) {
      EXPECT_LE(float(out[p][i]), float(out[p][i - 1]));
    }
  }
}

// ---------------------------------------------------------------------------
// The public drain API (namespace batch): the scheduling engine and the
// classified per-problem solvers the serving layer builds on.
// ---------------------------------------------------------------------------

TEST(BatchDrainApi, SchedulingExtentMatchesDriverClassification) {
  // Pipeline problems class by their LARGE dimension...
  EXPECT_EQ(batch::scheduling_extent(200, 100, 32), 200);
  EXPECT_EQ(batch::scheduling_extent(100, 200, 32), 200);
  // ...but fused-path problems (min dim at or below the threshold) class by
  // their SMALL dimension, and empty shapes class as 1.
  EXPECT_EQ(batch::scheduling_extent(200, 16, 32), 16);
  EXPECT_EQ(batch::scheduling_extent(16, 16, 32), 16);
  EXPECT_EQ(batch::scheduling_extent(200, 16, 0), 200);  // fused path disabled
  EXPECT_EQ(batch::scheduling_extent(0, 5, 32), 1);
  EXPECT_EQ(batch::scheduling_extent(5, 0, 32), 1);
}

TEST(BatchDrainApi, EmptyExtentsRunNoCallbacks) {
  int calls = 0;
  const batch::DrainRun run = batch::run_scheduled_batch(
      {}, BatchConfig{}, ka::default_backend(), [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_TRUE(run.schedules.empty());
  EXPECT_EQ(run.threads_used, 0u);
}

TEST(BatchDrainApi, SingleProblemWaveSolvesOnce) {
  // The serving layer's smallest wave: exactly one problem through the
  // engine must invoke the callback exactly once and report one schedule.
  const auto a = testutil::convert<float>(testutil::random_matrix(24, 24, 3));
  int calls = 0;
  SvdReport rep;
  const batch::DrainRun run = batch::run_scheduled_batch(
      {24}, BatchConfig{}, ka::default_backend(), [&](std::size_t p) {
        ++calls;
        rep = batch::solve_one_classified<float>(a.view(), small_config(),
                                                 ka::default_backend(),
                                                 "drain_test", p);
      });
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(run.schedules.size(), 1u);
  EXPECT_EQ(rep.status, SvdStatus::Ok);
  EXPECT_EQ(rep.values,
            svd_values_report<float>(a.view(), small_config()).values);
}

TEST(BatchDrainApi, ClassifiedSolversIsolateFailuresWithoutThrowing) {
  Matrix<float> poison(6, 6, 1.0f);
  poison(2, 3) = std::numeric_limits<float>::quiet_NaN();
  const SvdReport bad = batch::solve_one_classified<float>(
      poison.view(), SvdConfig{}, ka::default_backend(), "drain_test", 7);
  EXPECT_EQ(bad.status, SvdStatus::NonFinite);
  EXPECT_TRUE(bad.values.empty());
  EXPECT_NE(bad.status_message.find("problem 7"), std::string::npos);

  const SvdReport empty = batch::solve_one_classified<float>(
      ConstMatrixView<float>(nullptr, 0, 4, 1), SvdConfig{},
      ka::default_backend());
  EXPECT_EQ(empty.status, SvdStatus::InvalidInput);

  TruncConfig tc;
  tc.rank = 2;
  const TruncReport tbad = batch::solve_one_trunc_classified<float>(
      poison.view(), tc, ka::default_backend());
  EXPECT_EQ(tbad.status, SvdStatus::NonFinite);
  EXPECT_TRUE(tbad.values.empty());
}

TEST(BatchDrainApi, ClassifiedTruncMatchesSyncSolve) {
  const auto a = testutil::convert<float>(testutil::random_matrix(40, 20, 5));
  TruncConfig tc;
  tc.rank = 3;
  const TruncReport via_drain = batch::solve_one_trunc_classified<float>(
      a.view(), tc, ka::default_backend());
  const TruncReport sync = svd_truncated_report<float>(a.view(), tc);
  ASSERT_EQ(via_drain.status, SvdStatus::Ok);
  EXPECT_EQ(via_drain.values, sync.values);  // same seed => bit identical
  EXPECT_EQ(via_drain.rank, sync.rank);
}
