/// Scalar-vs-SIMD backend parity: the vectorized CPU backend must reproduce
/// the scalar CPU backend EXACTLY for singular values (the ValuesOnly
/// determinism contract extends across the backend axis — the SIMD kernel
/// bodies perform the identical per-lane operation sequence, and the build
/// pins -ffp-contract=off so neither path fuses multiply-adds), and within
/// the existing residual/orthogonality gates for singular vectors and
/// truncated factors. Runs in every build: in a scalar build (or on a
/// non-AVX2 machine) the "simd" backend executes the reference bodies and
/// parity holds trivially — the suite then pins that the fallback is
/// actually wired, not that vectorization happened.
///
/// Also proves the runtime fallback: a SimdCpuBackend constructed under
/// UNISVD_FORCE_SCALAR=1 produces the same bits as the enabled one.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/half.hpp"
#include "common/linalg_ref.hpp"
#include "core/batch.hpp"
#include "core/svd.hpp"
#include "core/tuner.hpp"
#include "ka/backend.hpp"
#include "ka/simd/dispatch.hpp"
#include "test_util.hpp"

using namespace unisvd;

namespace {

struct Shape {
  index_t m;
  index_t n;
  const char* tag;
};

// Tall, square and wide: exercises the lazy transpose, padding and (for the
// tall vector job) the QR-first path boundary.
constexpr Shape kShapes[] = {{48, 20, "tall"}, {40, 40, "square"}, {20, 48, "wide"}};

template <class T>
std::string type_tag() {
  if constexpr (std::is_same_v<T, Half>) return "fp16";
  if constexpr (std::is_same_v<T, float>) return "fp32";
  return "fp64";
}

/// Exact elementwise equality — bit identity for the finite values the
/// solver produces (NaN would fail, which is what we want).
template <class T>
void expect_bit_identical(const std::vector<T>& a, const std::vector<T>& b,
                          const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << what << " value " << i;
  }
}

void expect_bit_identical_d(const std::vector<double>& a,
                            const std::vector<double>& b,
                            const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << what << " value " << i;
  }
}

template <class T>
double accept_tol(index_t m, index_t n) {
  return 50.0 * precision_traits<T>::storage_eps * static_cast<double>(std::max(m, n));
}

/// Residual of a report's factors against the input, in double.
template <class T>
double residual(ConstMatrixView<T> a, const SvdReport& rep) {
  const Matrix<double> ad = ref::to_double(a);
  Matrix<double> us(rep.u.rows(), rep.vt.rows(), 0.0);
  for (index_t j = 0; j < us.cols(); ++j) {
    if (j >= static_cast<index_t>(rep.values.size())) continue;
    for (index_t i = 0; i < us.rows(); ++i) {
      us(i, j) = rep.u(i, j) * rep.values[static_cast<std::size_t>(j)];
    }
  }
  const Matrix<double> prod =
      ref::matmul(ConstMatrixView<double>(us.view()), rep.vt.view());
  const double denom = ref::fro_norm(ad.view());
  return ref::fro_diff(ad.view(), prod.view()) / denom;
}

/// RAII environment override for the forced-scalar fallback test.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* prev = std::getenv(name);
    had_ = prev != nullptr;
    if (had_) saved_ = prev;
    setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

template <class T>
class BackendParity : public ::testing::Test {};

using Precisions = ::testing::Types<Half, float, double>;
TYPED_TEST_SUITE(BackendParity, Precisions);

}  // namespace

TYPED_TEST(BackendParity, ValuesBitIdenticalAcrossShapes) {
  using T = TypeParam;
  ka::CpuBackend cpu(2);
  auto& simd = ka::simd_backend();
  std::uint64_t seed = 7001;
  for (const auto& sh : kShapes) {
    const auto a = testutil::convert<T>(testutil::random_matrix(sh.m, sh.n, seed++));
    const auto ref_vals = svd_values<T>(a.view(), {}, cpu);
    const auto simd_vals = svd_values<T>(a.view(), {}, simd);
    expect_bit_identical(ref_vals, simd_vals,
                         type_tag<T>() + " " + sh.tag + " cpu-vs-simd");
    // Serial backend closes the triangle: one workgroup at a time, no pool.
    ka::SerialBackend serial;
    const auto serial_vals = svd_values<T>(a.view(), {}, serial);
    expect_bit_identical(ref_vals, serial_vals,
                         type_tag<T>() + " " + sh.tag + " cpu-vs-serial");
  }
}

TYPED_TEST(BackendParity, VectorsWithinGatesAndValuesUnchanged) {
  using T = TypeParam;
  ka::CpuBackend cpu(2);
  auto& simd = ka::simd_backend();
  std::uint64_t seed = 7101;
  for (const auto& sh : kShapes) {
    const auto a = testutil::convert<T>(testutil::random_matrix(sh.m, sh.n, seed++));
    SvdConfig cfg;
    cfg.job = SvdJob::Thin;
    const SvdReport rep_cpu = svd_values_report<T>(a.view(), cfg, cpu);
    const SvdReport rep_simd = svd_values_report<T>(a.view(), cfg, simd);
    const std::string what = type_tag<T>() + " " + sh.tag + " thin";
    // Values stay bit-identical when vectors are accumulated (the vector
    // job never perturbs the values path), across backends.
    expect_bit_identical_d(rep_cpu.values, rep_simd.values, what);
    // Both backends' factors satisfy the standing accuracy gates.
    const double tol = accept_tol<T>(sh.m, sh.n);
    EXPECT_LE(residual(a.view(), rep_cpu), tol) << what << " cpu";
    EXPECT_LE(residual(a.view(), rep_simd), tol) << what << " simd";
    EXPECT_LE(ref::orthogonality_defect(rep_simd.u.view()), tol) << what;
    EXPECT_LE(ref::orthogonality_defect(rep_simd.vt.view().transposed()), tol)
        << what;
    // And against each other: the SIMD factors may not drift from the
    // scalar ones by more than the gates allow (they are in fact
    // bit-identical by construction; the tolerance keeps the contract at
    // what the documentation promises).
    EXPECT_LE(ref::fro_diff(rep_cpu.u.view(), rep_simd.u.view()), tol) << what;
    EXPECT_LE(ref::fro_diff(rep_cpu.vt.view(), rep_simd.vt.view()), tol) << what;
  }
}

TYPED_TEST(BackendParity, TruncatedDeterministicAcrossBackends) {
  using T = TypeParam;
  ka::CpuBackend cpu(2);
  auto& simd = ka::simd_backend();
  const auto a = testutil::convert<T>(testutil::random_matrix(60, 30, 7201));
  TruncConfig cfg;
  cfg.rank = 6;
  cfg.seed = 99;
  const TruncReport rep_cpu = svd_truncated_report<T>(a.view(), cfg, cpu);
  const TruncReport rep_simd = svd_truncated_report<T>(a.view(), cfg, simd);
  const std::string what = type_tag<T>() + " truncated";
  ASSERT_EQ(rep_cpu.rank, rep_simd.rank) << what;
  // svd_truncated is documented deterministic per seed across backends: the
  // sketch stream is derived from the seed alone and every kernel is
  // bit-identical, so values AND factors agree exactly.
  expect_bit_identical_d(rep_cpu.values, rep_simd.values, what);
  EXPECT_EQ(ref::fro_diff(rep_cpu.u.view(), rep_simd.u.view()), 0.0) << what;
  EXPECT_EQ(ref::fro_diff(rep_cpu.vt.view(), rep_simd.vt.view()), 0.0) << what;
}

TYPED_TEST(BackendParity, BatchedSchedulesBitIdenticalAcrossBackends) {
  using T = TypeParam;
  ka::CpuBackend cpu(2);
  auto& simd = ka::simd_backend();
  // Mixed sizes so Auto exercises its inter/intra split; explicit schedules
  // pin each engine path.
  std::vector<Matrix<T>> problems;
  std::uint64_t seed = 7301;
  for (index_t n : {12, 40, 20, 33}) {
    problems.push_back(testutil::convert<T>(testutil::random_matrix(n, n, seed++)));
  }
  const auto views = testutil::views_of(problems);
  for (const auto schedule : {BatchSchedule::Auto, BatchSchedule::InterProblem,
                              BatchSchedule::IntraProblem, BatchSchedule::Mixed}) {
    BatchConfig cfg;
    cfg.schedule = schedule;
    const auto ref_batch = svd_values_batched<T>(
        std::span<const ConstMatrixView<T>>(views), cfg, cpu);
    const auto simd_batch = svd_values_batched<T>(
        std::span<const ConstMatrixView<T>>(views), cfg, simd);
    ASSERT_EQ(ref_batch.size(), simd_batch.size());
    for (std::size_t p = 0; p < ref_batch.size(); ++p) {
      expect_bit_identical(ref_batch[p], simd_batch[p],
                           type_tag<T>() + " batched " +
                               std::string(to_string(schedule)) + " problem " +
                               std::to_string(p));
    }
  }
}

TEST(BackendParityFallback, ForcedScalarDispatchProducesIdenticalBits) {
  // A SIMD backend constructed under UNISVD_FORCE_SCALAR=1 must (a) report
  // itself non-vectorized and (b) produce exactly the bits of both the
  // scalar CPU backend and an unforced SIMD backend — forcing scalar only
  // loses speed, never changes a result.
  const auto a = testutil::convert<float>(testutil::random_matrix(44, 44, 7401));
  ka::CpuBackend cpu(2);
  auto& simd = ka::simd_backend();
  const auto ref_vals = svd_values<float>(a.view(), {}, cpu);
  const auto simd_vals = svd_values<float>(a.view(), {}, simd);
  std::vector<float> forced_vals;
  {
    ScopedEnv force("UNISVD_FORCE_SCALAR", "1");
    ka::SimdCpuBackend forced(2);
    EXPECT_FALSE(forced.vectorized());
    forced_vals = svd_values<float>(a.view(), {}, forced);
  }
  expect_bit_identical(ref_vals, forced_vals, "cpu vs forced-scalar simd");
  expect_bit_identical(simd_vals, forced_vals, "simd vs forced-scalar simd");
}

TEST(BackendParityTuning, TuningTableKeysScalarAndSimdSeparately) {
  // The TuningTable keys every learned entry by Backend::name(): "simd"
  // rows must not shadow "cpu" rows and vice versa, so each backend looks
  // up what was actually measured on it.
  core::TuningTable table;
  table.set_batch_crossover("cpu", Precision::FP32, 96);
  table.set_batch_crossover("simd", Precision::FP32, 160);
  ASSERT_TRUE(table.batch_crossover("cpu", Precision::FP32).has_value());
  ASSERT_TRUE(table.batch_crossover("simd", Precision::FP32).has_value());
  EXPECT_EQ(*table.batch_crossover("cpu", Precision::FP32), 96);
  EXPECT_EQ(*table.batch_crossover("simd", Precision::FP32), 160);
  // The name a learner would use comes straight from the backend object.
  EXPECT_EQ(ka::simd_backend().name(), "simd");
  // Nearest-precision fallback stays within the backend's own rows.
  EXPECT_EQ(table.batch_crossover_or("simd", Precision::FP16, 7), 160);
  EXPECT_EQ(table.batch_crossover_or("serial", Precision::FP32, 7), 7);
}
