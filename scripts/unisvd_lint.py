#!/usr/bin/env python3
"""unisvd project linter: repo-specific invariants no off-the-shelf tool knows.

Rules (see docs/STATIC_ANALYSIS.md for the full catalog and rationale):

  raw-mutex        No raw std::mutex / std::lock_guard / std::unique_lock /
                   std::condition_variable (& friends) anywhere under src/
                   except the annotated wrapper header
                   src/common/thread_annotations.hpp. Raw primitives are
                   invisible to Clang's -Wthread-safety analysis; the
                   wrappers are not.
  kernel-alloc     No heap allocation (new/malloc/std::vector growth/Matrix
                   construction) in kernel bodies: every line of
                   src/ka/simd/, and the regions marked
                   "// unisvd-lint: begin-kernel(...)" ... "end-kernel"
                   under src/small/.
  test-registration  Every tests/test_*.cpp must be registered in
                   CMakeLists.txt (the test glob or an explicit mention)
                   AND exercised by at least one sanitizer CI job in
                   .github/workflows/ci.yml (a job configuring
                   -DUNISVD_SANITIZE whose ctest invocation either has no
                   -R filter or matches the test name).
  bench-exit-gate  Every bench/*.cpp that mentions a gate must enforce it
                   through the process exit code (EXIT_FAILURE, return 1,
                   a failures counter, or a "cond ? 0 : 1" main return) —
                   a gate that only prints cannot fail CI.
  half-narrowing   No Half construction through a float intermediate
                   (Half(static_cast<float>(d)), Half(float(d)), ...):
                   double -> float -> half rounds twice; Half(double) and
                   narrow_from_double<Half> round once. tests/test_half*.cpp
                   is exempt — it regression-tests the buggy chain itself.

Suppressions (must carry a reason):
  // unisvd-lint: allow(<rule>) <reason>          this line and the next
  // unisvd-lint: begin-allow(<rule>) <reason>    until end-allow
  // unisvd-lint: end-allow

Usage:
  unisvd_lint.py [--root DIR] [--report FILE]
  unisvd_lint.py --self-test

Exit code 0 when clean, 1 on findings (or self-test failure).
"""

from __future__ import annotations

import argparse
import re
import sys
import tempfile
from pathlib import Path

# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

ALLOW_RE = re.compile(r"//\s*unisvd-lint:\s*allow\((?P<rule>[\w-]+)\)\s*(?P<reason>.*)")
BEGIN_ALLOW_RE = re.compile(
    r"//\s*unisvd-lint:\s*begin-allow\((?P<rule>[\w-]+)\)\s*(?P<reason>.*)"
)
END_ALLOW_RE = re.compile(r"//\s*unisvd-lint:\s*end-allow")
BEGIN_KERNEL_RE = re.compile(r"//\s*unisvd-lint:\s*begin-kernel\((?P<name>[\w-]+)\)")
END_KERNEL_RE = re.compile(r"//\s*unisvd-lint:\s*end-kernel")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line: str) -> str:
    """Best-effort removal of // comments and string/char literal bodies so
    patterns only match code. Line-local (block comments spanning lines are
    not used in this codebase's rule scopes)."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            end = line.find("*/", i + 2)
            if end == -1:
                break
            i = end + 2
            continue
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                if line[i] == "\\":
                    i += 1
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def suppressed_lines(lines: list[str], rule: str) -> set[int]:
    """1-based line numbers where `rule` is suppressed by allow comments."""
    out: set[int] = set()
    depth = 0
    for ln, raw in enumerate(lines, start=1):
        m = BEGIN_ALLOW_RE.search(raw)
        if m and m.group("rule") == rule:
            depth += 1
            out.add(ln)
            continue
        if END_ALLOW_RE.search(raw):
            if depth > 0:
                depth -= 1
            out.add(ln)
            continue
        if depth > 0:
            out.add(ln)
            continue
        m = ALLOW_RE.search(raw)
        if m and m.group("rule") == rule:
            out.add(ln)
            out.add(ln + 1)
    return out


def source_files(root: Path, sub: str, patterns=("*.cpp", "*.hpp", "*.h")) -> list[Path]:
    base = root / sub
    if not base.is_dir():
        return []
    files: list[Path] = []
    for pat in patterns:
        files.extend(base.rglob(pat))
    return sorted(set(files))


# ---------------------------------------------------------------------------
# Rule: raw-mutex
# ---------------------------------------------------------------------------

RAW_MUTEX_RE = re.compile(
    r"std::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock"
    r"|shared_lock|condition_variable|condition_variable_any)\b"
)

WRAPPER_HEADER = Path("src") / "common" / "thread_annotations.hpp"


def check_raw_mutex(root: Path) -> list[Finding]:
    findings: list[Finding] = []
    for path in source_files(root, "src"):
        if path.resolve() == (root / WRAPPER_HEADER).resolve():
            continue
        lines = path.read_text(encoding="utf-8").splitlines()
        allowed = suppressed_lines(lines, "raw-mutex")
        for ln, raw in enumerate(lines, start=1):
            if ln in allowed:
                continue
            m = RAW_MUTEX_RE.search(strip_comments_and_strings(raw))
            if m:
                findings.append(
                    Finding(
                        path.relative_to(root),
                        ln,
                        "raw-mutex",
                        f"raw std::{m.group(1)} outside {WRAPPER_HEADER}; use the "
                        "annotated unisvd::Mutex/LockGuard/UniqueLock/CondVar "
                        "wrappers so -Wthread-safety can check the lock discipline",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# Rule: kernel-alloc
# ---------------------------------------------------------------------------

ALLOC_RE = re.compile(
    r"(\bnew\b(?!\s*\())|\bnew\s+\w|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\("
    r"|std::vector\s*<|\.push_back\s*\(|\.emplace_back\s*\(|\.resize\s*\("
    r"|\.reserve\s*\(|\bMatrix\s*<[^>]+>\s+\w+\s*\(|std::make_unique|std::make_shared"
    r"|std::string\s+\w"
)


def kernel_alloc_in_file(root: Path, path: Path, whole_file: bool) -> list[Finding]:
    findings: list[Finding] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    allowed = suppressed_lines(lines, "kernel-alloc")
    in_kernel = whole_file
    for ln, raw in enumerate(lines, start=1):
        if not whole_file:
            if BEGIN_KERNEL_RE.search(raw):
                in_kernel = True
                continue
            if END_KERNEL_RE.search(raw):
                in_kernel = False
                continue
        if not in_kernel or ln in allowed:
            continue
        m = ALLOC_RE.search(strip_comments_and_strings(raw))
        if m:
            findings.append(
                Finding(
                    path.relative_to(root),
                    ln,
                    "kernel-alloc",
                    "heap allocation in a kernel body "
                    f"('{m.group(0).strip()}'): kernels work in caller scratch "
                    "or stack buffers; allocate in the driver and pass it in",
                )
            )
    return findings


def check_kernel_alloc(root: Path) -> list[Finding]:
    findings: list[Finding] = []
    for path in source_files(root, "src/ka/simd"):
        findings.extend(kernel_alloc_in_file(root, path, whole_file=True))
    for path in source_files(root, "src/small"):
        findings.extend(kernel_alloc_in_file(root, path, whole_file=False))
    return findings


# ---------------------------------------------------------------------------
# Rule: test-registration
# ---------------------------------------------------------------------------


def ci_jobs(ci_text: str) -> dict[str, str]:
    """Split a GitHub workflow into {job_name: job_text} (2-space indent keys
    under the top-level jobs: block)."""
    jobs: dict[str, str] = {}
    in_jobs = False
    name = None
    buf: list[str] = []
    for line in ci_text.splitlines():
        if re.match(r"^jobs:\s*$", line):
            in_jobs = True
            continue
        if not in_jobs:
            continue
        if re.match(r"^\S", line):  # left the jobs: block
            break
        m = re.match(r"^  ([A-Za-z0-9_-]+):\s*$", line)
        if m:
            if name is not None:
                jobs[name] = "\n".join(buf)
            name = m.group(1)
            buf = []
            continue
        if name is not None:
            buf.append(line)
    if name is not None:
        jobs[name] = "\n".join(buf)
    return jobs


def run_blocks(job_body: str) -> list[str]:
    """The text of each `run:` step, with YAML `>`/`|` continuation lines
    folded in (a ctest flag like -R often lands on a continuation line)."""
    blocks: list[str] = []
    lines = job_body.splitlines()
    i = 0
    while i < len(lines):
        m = re.match(r"^(\s*)(?:-\s+)?run:\s*(.*)$", lines[i])
        if not m:
            i += 1
            continue
        indent = len(m.group(1))
        block = [m.group(2).lstrip(">|").strip()]
        i += 1
        while i < len(lines):
            line = lines[i]
            if line.strip() and (len(line) - len(line.lstrip())) <= indent:
                break
            block.append(line.strip())
            i += 1
        blocks.append(" ".join(b for b in block if b))
    return blocks


def sanitizer_covered_tests(ci_text: str, test_names: list[str]) -> set[str]:
    covered: set[str] = set()
    for _, body in ci_jobs(ci_text).items():
        if "-DUNISVD_SANITIZE" not in body:
            continue
        for block in run_blocks(body):
            if not re.search(r"\bctest\b", block):
                continue
            m = re.search(r"-R\s+(?:\"([^\"]+)\"|'([^']+)'|(\S+))", block)
            if not m:
                covered.update(test_names)  # unfiltered ctest runs everything
                continue
            pattern = next(g for g in m.groups() if g)
            try:
                rx = re.compile(pattern)
            except re.error:
                continue
            covered.update(t for t in test_names if rx.search(t))
    return covered


def check_test_registration(root: Path) -> list[Finding]:
    findings: list[Finding] = []
    tests = sorted((root / "tests").glob("test_*.cpp")) if (root / "tests").is_dir() else []
    if not tests:
        return findings
    names = [t.stem for t in tests]

    cmake_path = root / "CMakeLists.txt"
    cmake = cmake_path.read_text(encoding="utf-8") if cmake_path.is_file() else ""
    glob_registers = re.search(r"GLOB[\w_]*\s+[\w_]+\s+[^)]*tests/test_\*?\.?\*?", cmake) or (
        "tests/test_*.cpp" in cmake
    )

    ci_path = root / ".github" / "workflows" / "ci.yml"
    ci_text = ci_path.read_text(encoding="utf-8") if ci_path.is_file() else ""
    covered = sanitizer_covered_tests(ci_text, names) if ci_text else set()

    for t, name in zip(tests, names):
        if not glob_registers and name not in cmake:
            findings.append(
                Finding(
                    t.relative_to(root),
                    1,
                    "test-registration",
                    f"{name} is not registered in CMakeLists.txt",
                )
            )
        if name not in covered:
            findings.append(
                Finding(
                    t.relative_to(root),
                    1,
                    "test-registration",
                    f"{name} is not exercised by any sanitizer CI job "
                    "(asan/tsan/ubsan in .github/workflows/ci.yml)",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# Rule: bench-exit-gate
# ---------------------------------------------------------------------------

GATE_WORD_RE = re.compile(r"\bgate", re.IGNORECASE)
EXIT_IDIOMS = [
    re.compile(r"\bEXIT_FAILURE\b"),
    re.compile(r"\breturn\s+1\s*;"),
    re.compile(r"\breturn\s+[^;]*\?\s*0\s*:\s*[1-9]"),
    re.compile(r"\breturn\s+[^;]*fail", re.IGNORECASE),
    re.compile(r"std::exit\s*\(\s*[1-9]"),
]


def check_bench_exit_gate(root: Path) -> list[Finding]:
    findings: list[Finding] = []
    bench = root / "bench"
    if not bench.is_dir():
        return findings
    for path in sorted(bench.glob("*.cpp")):
        text = path.read_text(encoding="utf-8")
        if not GATE_WORD_RE.search(text):
            continue
        lines = text.splitlines()
        allowed = suppressed_lines(lines, "bench-exit-gate")
        gate_line = next(
            (ln for ln, raw in enumerate(lines, start=1) if GATE_WORD_RE.search(raw)), 1
        )
        if gate_line in allowed:
            continue
        if not any(rx.search(text) for rx in EXIT_IDIOMS):
            findings.append(
                Finding(
                    path.relative_to(root),
                    gate_line,
                    "bench-exit-gate",
                    "bench mentions a gate but never fails the process exit "
                    "code; a gate that only prints cannot fail CI",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# Rule: half-narrowing
# ---------------------------------------------------------------------------

HALF_NARROW_RE = re.compile(
    r"Half\s*\(\s*static_cast<\s*float\s*>\s*\("
    r"|Half\s*\(\s*float\s*\("
    r"|Half\s*\(\s*\(\s*float\s*\)"
)

HALF_EXEMPT = re.compile(r"(common/half[\w.]*|common/precision\.hpp|tests/test_half\w*\.cpp)$")


def check_half_narrowing(root: Path) -> list[Finding]:
    findings: list[Finding] = []
    for sub in ("src", "tests", "bench", "examples"):
        for path in source_files(root, sub):
            rel = path.relative_to(root).as_posix()
            if HALF_EXEMPT.search(rel):
                continue
            lines = path.read_text(encoding="utf-8").splitlines()
            allowed = suppressed_lines(lines, "half-narrowing")
            for ln, raw in enumerate(lines, start=1):
                if ln in allowed:
                    continue
                if HALF_NARROW_RE.search(strip_comments_and_strings(raw)):
                    findings.append(
                        Finding(
                            path.relative_to(root),
                            ln,
                            "half-narrowing",
                            "Half built through a float intermediate rounds "
                            "twice; use Half(double) or "
                            "narrow_from_double<Half> (single rounding)",
                        )
                    )
    return findings


ALL_CHECKS = [
    check_raw_mutex,
    check_kernel_alloc,
    check_test_registration,
    check_bench_exit_gate,
    check_half_narrowing,
]


def run_all(root: Path) -> list[Finding]:
    findings: list[Finding] = []
    for check in ALL_CHECKS:
        findings.extend(check(root))
    return findings


# ---------------------------------------------------------------------------
# Self-test: fixture snippets that must trip each rule, and clean twins that
# must pass. Runs the real checkers over a synthetic mini-repo.
# ---------------------------------------------------------------------------


def _write(root: Path, rel: str, text: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")


def self_test() -> int:
    failures: list[str] = []

    def expect(cond: bool, what: str) -> None:
        if not cond:
            failures.append(what)

    with tempfile.TemporaryDirectory(prefix="unisvd_lint_selftest_") as tmp:
        root = Path(tmp)

        # --- raw-mutex ---------------------------------------------------
        _write(
            root,
            "src/common/thread_annotations.hpp",
            "#pragma once\n#include <mutex>\nnamespace unisvd { class Mutex { std::mutex mu_; }; }\n",
        )
        _write(
            root,
            "src/serve/bad_mutex.cpp",
            "#include <mutex>\nstd::mutex mu;\nvoid f() { std::lock_guard lock(mu); }\n",
        )
        _write(
            root,
            "src/serve/good_mutex.cpp",
            '#include "common/thread_annotations.hpp"\n'
            "unisvd::Mutex mu;  // a comment naming std::mutex is fine\n",
        )
        _write(
            root,
            "src/serve/allowed_mutex.cpp",
            "#include <mutex>\n"
            "// unisvd-lint: allow(raw-mutex) interop with a C API needing the raw type\n"
            "std::mutex raw_for_c_interop;\n",
        )
        f = check_raw_mutex(root)
        expect(any("bad_mutex.cpp" in str(x.path) for x in f), "raw-mutex: fixture must trip")
        expect(sum("bad_mutex.cpp" in str(x.path) for x in f) == 2, "raw-mutex: both raw lines flagged")
        expect(not any("good_mutex.cpp" in str(x.path) for x in f), "raw-mutex: clean twin must pass")
        expect(not any("allowed_mutex.cpp" in str(x.path) for x in f), "raw-mutex: allow() must suppress")
        expect(not any("thread_annotations.hpp" in str(x.path) for x in f), "raw-mutex: wrapper header exempt")

        # --- kernel-alloc ------------------------------------------------
        _write(
            root,
            "src/ka/simd/bad_kernel.hpp",
            "#pragma once\n#include <vector>\nvoid k() { std::vector<float> v; v.push_back(1.0f); }\n",
        )
        _write(
            root,
            "src/small/marked.cpp",
            "#include <vector>\n"
            "std::vector<int> setup_table;  // outside any kernel region: fine\n"
            "// unisvd-lint: begin-kernel(demo)\n"
            "void kernel(float* w, int n) { for (int i = 0; i < n; ++i) w[i] *= 2.0f; }\n"
            "// unisvd-lint: end-kernel\n",
        )
        _write(
            root,
            "src/small/marked_bad.cpp",
            "#include <vector>\n"
            "// unisvd-lint: begin-kernel(demo2)\n"
            "void kernel2() { std::vector<int> scratch; }\n"
            "// unisvd-lint: begin-allow(kernel-alloc) cold fallback path\n"
            "void fallback() { std::vector<int> rare; }\n"
            "// unisvd-lint: end-allow\n"
            "// unisvd-lint: end-kernel\n",
        )
        f = check_kernel_alloc(root)
        expect(any("bad_kernel.hpp" in str(x.path) for x in f), "kernel-alloc: simd/ fixture must trip")
        expect(
            any("marked_bad.cpp" in str(x.path) and x.line == 3 for x in f),
            "kernel-alloc: in-region alloc must trip",
        )
        expect(
            not any("marked_bad.cpp" in str(x.path) and x.line == 5 for x in f),
            "kernel-alloc: begin-allow block must suppress",
        )
        expect(not any("marked.cpp" in str(x.path) for x in f), "kernel-alloc: clean twin must pass")

        # --- test-registration -------------------------------------------
        _write(root, "tests/test_alpha.cpp", "int main() { return 0; }\n")
        _write(root, "tests/test_beta.cpp", "int main() { return 0; }\n")
        _write(
            root,
            "CMakeLists.txt",
            "file(GLOB UNISVD_TEST_SOURCES CONFIGURE_DEPENDS tests/test_*.cpp)\n",
        )
        _write(
            root,
            ".github/workflows/ci.yml",
            "name: ci\njobs:\n"
            "  asan:\n"
            "    steps:\n"
            "      - run: cmake -B build -DUNISVD_SANITIZE=address\n"
            "      - name: Test\n"
            "        run: >\n"
            "          ctest --test-dir build\n"
            "          -R 'test_alpha'\n",
        )
        f = check_test_registration(root)
        expect(
            any("test_beta" in str(x.path) and "sanitizer" in x.message for x in f),
            "test-registration: uncovered test must trip",
        )
        expect(
            not any("test_alpha" in str(x.path) for x in f),
            "test-registration: covered test must pass",
        )
        _write(
            root,
            ".github/workflows/ci.yml",
            "name: ci\njobs:\n"
            "  ubsan:\n"
            "    steps:\n"
            "      - run: cmake -B build -DUNISVD_SANITIZE=undefined\n"
            "      - run: ctest --test-dir build --output-on-failure\n",
        )
        f = check_test_registration(root)
        expect(not f, "test-registration: unfiltered sanitizer ctest covers everything")

        # --- bench-exit-gate ---------------------------------------------
        _write(
            root,
            "bench/bad_gate.cpp",
            '#include <cstdio>\nint main() { bool gate_ok = true; std::printf("GATE %d\\n", gate_ok); return 0; }\n',
        )
        _write(
            root,
            "bench/good_gate.cpp",
            "int main() { bool gate_ok = true; return gate_ok ? 0 : 1; }\n",
        )
        _write(root, "bench/no_gate.cpp", "int main() { return 0; }\n")
        f = check_bench_exit_gate(root)
        expect(any("bad_gate.cpp" in str(x.path) for x in f), "bench-exit-gate: print-only gate must trip")
        expect(not any("good_gate.cpp" in str(x.path) for x in f), "bench-exit-gate: exit-coded gate must pass")
        expect(not any("no_gate.cpp" in str(x.path) for x in f), "bench-exit-gate: gateless bench exempt")

        # --- half-narrowing ----------------------------------------------
        _write(
            root,
            "src/core/bad_half.cpp",
            '#include "common/half.hpp"\n'
            "unisvd::Half f(double d) { return unisvd::Half(static_cast<float>(d)); }\n"
            "unisvd::Half g(double d) { return unisvd::Half(float(d)); }\n",
        )
        _write(
            root,
            "src/core/good_half.cpp",
            '#include "common/precision.hpp"\n'
            "unisvd::Half f(double d) { return unisvd::narrow_from_double<unisvd::Half>(d); }\n"
            "unisvd::Half g(double d) { return unisvd::Half(d); }  // single rounding\n",
        )
        _write(
            root,
            "tests/test_half_roundtrip.cpp",
            "unisvd::Half f(double d) { return unisvd::Half(static_cast<float>(d)); }\n",
        )
        f = check_half_narrowing(root)
        expect(
            sum("bad_half.cpp" in str(x.path) for x in f) == 2,
            "half-narrowing: both float-chain lines must trip",
        )
        expect(not any("good_half.cpp" in str(x.path) for x in f), "half-narrowing: clean twin must pass")
        expect(
            not any("test_half_roundtrip" in str(x.path) for x in f),
            "half-narrowing: tests/test_half* exempt",
        )

    if failures:
        print("unisvd_lint self-test FAILED:")
        for what in failures:
            print(f"  - {what}")
        return 1
    print("unisvd_lint self-test passed (5 rules, trip + clean + suppression fixtures).")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None, help="repo root (default: script's parent dir)")
    ap.add_argument("--report", default=None, help="also write findings to this file")
    ap.add_argument("--self-test", action="store_true", help="run the rule fixtures and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent
    findings = run_all(root)
    report_lines = [str(f) for f in findings]
    if args.report:
        Path(args.report).write_text(
            "\n".join(report_lines) + ("\n" if report_lines else "unisvd_lint: clean\n"),
            encoding="utf-8",
        )
    if findings:
        print(f"unisvd_lint: {len(findings)} finding(s)")
        for line in report_lines:
            print(f"  {line}")
        return 1
    print("unisvd_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
