#!/usr/bin/env python3
"""Documentation consistency checker (the CI docs job).

Fails (exit 1) when:
  * an intra-repo markdown link ([text](path), path not a URL/mailto) in any
    tracked *.md file points at a file or directory that does not exist;
  * a source file referenced by path in README.md or docs/*.md
    (e.g. `bench/fig3_library_ratio.cpp`, `examples/quickstart.cpp`,
    `src/core/svd.cpp`, `tests/test_svd_vectors.cpp`) does not exist;
  * a bench binary referenced as `bench_<name>` in README.md or docs/*.md
    has no matching bench/<name>.cpp.

Anchors (#fragment) are stripped from links; http(s)/mailto links are
ignored. Run from anywhere: paths resolve against the repository root
(parent of this script's directory).
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# Markdown files that make promises worth checking.
DOC_FILES = sorted(
    p
    for p in list(ROOT.glob("*.md")) + list((ROOT / "docs").glob("*.md"))
    if p.is_file()
)

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SOURCE_REF_RE = re.compile(
    r"\b((?:src|bench|examples|tests|scripts)/[A-Za-z0-9_./-]+\.(?:cpp|hpp|h|py))\b"
)
# Bare source-file mentions (`quickstart.cpp`) and built binaries
# (`./build/quickstart`) — resolved against the source trees below.
BARE_SOURCE_RE = re.compile(r"`([A-Za-z0-9_]+\.(?:cpp|hpp|h|py))`")
BUILD_BIN_RE = re.compile(r"\./build/([A-Za-z0-9_]+)")
BENCH_BIN_RE = re.compile(r"\bbench_([a-z0-9_]+)\b")
SOURCE_DIRS = ("src", "bench", "examples", "tests", "scripts")

# Bench binary names that are not 1:1 with a bench/*.cpp source.
BENCH_BIN_ALLOW = set()


def fail(errors: list[str]) -> None:
    for e in errors:
        print(f"check_docs: {e}", file=sys.stderr)
    print(f"check_docs: {len(errors)} problem(s) found", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    errors = []
    if not DOC_FILES:
        fail(["no markdown files found — wrong root?"])

    for doc in DOC_FILES:
        text = doc.read_text(encoding="utf-8")
        rel = doc.relative_to(ROOT)

        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                errors.append(f"{rel}: broken link -> {target}")

        # Only the user-facing docs promise runnable artifacts.
        if rel.name == "README.md" or rel.parts[0] == "docs":
            for match in SOURCE_REF_RE.finditer(text):
                path = ROOT / match.group(1)
                if not path.exists():
                    errors.append(f"{rel}: referenced source missing -> {match.group(1)}")
            for match in BARE_SOURCE_RE.finditer(text):
                name = match.group(1)
                found = any(
                    True for d in SOURCE_DIRS for _ in (ROOT / d).glob(f"**/{name}")
                )
                if not found:
                    errors.append(f"{rel}: referenced source missing -> {name}")
            for match in BUILD_BIN_RE.finditer(text):
                name = match.group(1)
                src = name.removeprefix("bench_")
                candidates = [f"examples/{name}.cpp", f"bench/{src}.cpp"]
                if not any((ROOT / c).exists() for c in candidates):
                    errors.append(
                        f"{rel}: ./build/{name} has no matching example/bench source"
                    )
            for match in BENCH_BIN_RE.finditer(text):
                name = match.group(1)
                if name in BENCH_BIN_ALLOW:
                    continue
                if not (ROOT / "bench" / f"{name}.cpp").exists():
                    errors.append(
                        f"{rel}: bench binary bench_{name} has no bench/{name}.cpp"
                    )

    if errors:
        fail(sorted(set(errors)))
    print(f"check_docs: OK ({len(DOC_FILES)} markdown files checked)")


if __name__ == "__main__":
    main()
