/// Portability report — the paper's central claim in one executable:
/// one kernel source, every hardware target, every precision.
///
/// Runs the SAME pipeline (a) for real on two executing backends (serial
/// reference and multithreaded CPU) verifying bitwise identical results,
/// and (b) through the device performance model for every GPU of the
/// paper's Table 2 fleet, with per-(device, precision) tuned
/// hyperparameters — printing the tuned configuration and predicted
/// runtime, including the support gaps (no FP64 on Metal, no FP16 on
/// Julia-era AMD).

#include <cstdio>

#include "core/svd.hpp"
#include "rand/matrix_gen.hpp"
#include "sim/library_model.hpp"
#include "sim/tuning.hpp"

using namespace unisvd;

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 4096;

  std::printf("== Part 1: one source, two executing backends (n = 256) ==\n");
  rnd::Xoshiro256 rng(11);
  const auto a = rnd::gaussian_matrix(256, 256, rng);
  ka::SerialBackend serial;
  ka::CpuBackend cpu;
  const auto v1 = svd_values_report<double>(a.view(), {}, serial).values;
  const auto v2 = svd_values_report<double>(a.view(), {}, cpu).values;
  bool identical = true;
  for (std::size_t i = 0; i < v1.size(); ++i) identical &= (v1[i] == v2[i]);
  std::printf("serial vs %u-thread CPU backend: %s (sigma_1 = %.12f)\n",
              static_cast<ka::CpuBackend&>(cpu).pool().size(),
              identical ? "bitwise identical" : "MISMATCH", v1.front());

  std::printf("\n== Part 2: tuned configuration + predicted runtime per GPU "
              "(n = %lld) ==\n", static_cast<long long>(n));
  std::printf("%-9s %-6s %8s %8s %8s %12s %10s\n", "device", "prec", "TILESZ",
              "CPB", "SPLITK", "runtime", "trail/pan");
  for (const auto* dev : sim::all_devices()) {
    for (const auto p : {Precision::FP16, Precision::FP32, Precision::FP64}) {
      if (!dev->supports(p)) {
        std::printf("%-9s %-6s %34s\n", dev->name.c_str(),
                    std::string(to_string(p)).c_str(), "-- not supported --");
        continue;
      }
      if (!dev->fits(n, p)) {
        std::printf("%-9s %-6s %34s\n", dev->name.c_str(),
                    std::string(to_string(p)).c_str(), "-- exceeds memory --");
        continue;
      }
      const auto cfg = sim::tuned_kernel_config(*dev, p, n);
      const auto br = sim::simulate_unified(*dev, n, p);
      std::printf("%-9s %-6s %8d %8d %8d %11.3fs %10.2f\n", dev->name.c_str(),
                  std::string(to_string(p)).c_str(), cfg.tilesize, cfg.colperblock,
                  cfg.splitk, br.total(), br.trailing / br.panel);
    }
  }
  std::printf(
      "\nNo kernel was rewritten per row above: the hyperparameters are the\n"
      "only per-hardware knobs (paper contribution 5).\n");
  return 0;
}
