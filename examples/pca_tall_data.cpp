/// PCA on a tall data matrix — exercises the rectangular input path
/// (tiled tall QR preprocessing + two-stage reduction).
///
/// A synthetic dataset of m samples x n features is drawn from a
/// low-dimensional latent model plus noise; the singular values of the
/// centered data matrix give the explained-variance profile, and the knee
/// identifies the latent dimension. Run in FP32 and FP16 to show that
/// reduced precision preserves the component structure.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/svd.hpp"
#include "rand/matrix_gen.hpp"
#include "rand/rng.hpp"

using namespace unisvd;

int main(int argc, char** argv) {
  const index_t m = argc > 1 ? std::atoll(argv[1]) : 2048;  // samples
  const index_t n = argc > 2 ? std::atoll(argv[2]) : 128;   // features
  const index_t latent = 6;
  std::printf("PCA: %lld samples x %lld features, latent dimension %lld + noise\n",
              static_cast<long long>(m), static_cast<long long>(n),
              static_cast<long long>(latent));

  // X = L F + noise: L (m x latent) latent coordinates, F (latent x n)
  // feature loadings of decaying strength.
  rnd::Xoshiro256 rng(31);
  const auto l = rnd::gaussian_matrix(m, latent, rng);
  const auto f = rnd::gaussian_matrix(latent, n, rng);
  Matrix<double> x(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double v = 0.05 * rng.normal();  // noise floor
      for (index_t k = 0; k < latent; ++k) {
        v += l(i, k) * f(k, j) * std::pow(0.6, static_cast<double>(k));
      }
      x(i, j) = v;
    }
  }
  // Center columns.
  for (index_t j = 0; j < n; ++j) {
    double mean = 0.0;
    for (index_t i = 0; i < m; ++i) mean += x(i, j);
    mean /= static_cast<double>(m);
    for (index_t i = 0; i < m; ++i) x(i, j) -= mean;
  }

  const auto analyze = [&](auto tag, const char* name) {
    using T = decltype(tag);
    const Matrix<T> xt = rnd::round_to<T>(x);
    SvdConfig cfg;
    cfg.auto_scale = true;  // data scale is arbitrary: let the solver handle it
    const auto rep = svd_values_report<T>(xt.view(), cfg);
    double total = 0.0;
    for (double s : rep.values) total += s * s;
    std::printf("\n%s (%.0f ms, scale factor %.2f): explained variance\n", name,
                1e3 * rep.stage_times.total(), rep.scale_factor);
    double acc = 0.0;
    for (index_t k = 0; k < 10; ++k) {
      const double ev = rep.values[static_cast<std::size_t>(k)] *
                        rep.values[static_cast<std::size_t>(k)] / total;
      acc += ev;
      std::printf("  PC%-2lld sigma = %9.3f  var %5.1f%%  cum %5.1f%%%s\n",
                  static_cast<long long>(k + 1), rep.values[static_cast<std::size_t>(k)],
                  100.0 * ev, 100.0 * acc, k + 1 == latent ? "   <- latent dim" : "");
    }
  };
  analyze(float{}, "FP32");
  analyze(Half{}, "FP16");

  std::printf(
      "\nExpected: a sharp drop in explained variance after PC%lld in both\n"
      "precisions — FP16 storage is sufficient to identify the latent rank.\n",
      static_cast<long long>(latent));
  return 0;
}
