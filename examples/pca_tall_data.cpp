/// PCA on a tall data matrix — exercises the rectangular input path
/// (tiled tall QR preprocessing + two-stage reduction) and the full SVD
/// with singular vectors (SvdJob::Thin).
///
/// A synthetic dataset of m samples x n features is drawn from a
/// low-dimensional latent model plus noise; the singular values of the
/// centered data matrix give the explained-variance profile, the knee
/// identifies the latent dimension, and the right singular vectors project
/// the data onto REAL principal components (not a faked projection): the
/// rank-k reconstruction error ||X - U_k S_k V_k^T|| / ||X|| collapses at
/// the latent rank. Run in FP32 and FP16 to show that reduced precision
/// preserves both the spectrum and the principal subspace.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/linalg_ref.hpp"
#include "core/svd.hpp"
#include "example_util.hpp"
#include "rand/matrix_gen.hpp"
#include "rand/rng.hpp"

using namespace unisvd;
using example_util::rank_k_residual;

int main(int argc, char** argv) {
  const index_t m = argc > 1 ? std::atoll(argv[1]) : 2048;  // samples
  const index_t n = argc > 2 ? std::atoll(argv[2]) : 128;   // features
  const index_t latent = 6;
  std::printf("PCA: %lld samples x %lld features, latent dimension %lld + noise\n",
              static_cast<long long>(m), static_cast<long long>(n),
              static_cast<long long>(latent));

  // X = L F + noise: L (m x latent) latent coordinates, F (latent x n)
  // feature loadings of decaying strength.
  rnd::Xoshiro256 rng(31);
  const auto l = rnd::gaussian_matrix(m, latent, rng);
  const auto f = rnd::gaussian_matrix(latent, n, rng);
  Matrix<double> x(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double v = 0.05 * rng.normal();  // noise floor
      for (index_t k = 0; k < latent; ++k) {
        v += l(i, k) * f(k, j) * std::pow(0.6, static_cast<double>(k));
      }
      x(i, j) = v;
    }
  }
  // Center columns.
  for (index_t j = 0; j < n; ++j) {
    double mean = 0.0;
    for (index_t i = 0; i < m; ++i) mean += x(i, j);
    mean /= static_cast<double>(m);
    for (index_t i = 0; i < m; ++i) x(i, j) -= mean;
  }

  const auto analyze = [&](auto tag, const char* name) {
    using T = decltype(tag);
    const Matrix<T> xt = rnd::round_to<T>(x);
    SvdConfig cfg;
    cfg.auto_scale = true;  // data scale is arbitrary: let the solver handle it
    cfg.job = SvdJob::Thin; // U (m x n) and Vt (n x n): real projections
    const auto rep = svd_report<T>(xt.view(), cfg);
    double total = 0.0;
    for (double s : rep.values) total += s * s;
    std::printf("\n%s (%.0f ms, scale factor %.2f, vector-acc %.0f ms)\n", name,
                1e3 * rep.stage_times.total(), rep.scale_factor,
                1e3 * rep.stage_times.get(ka::Stage::VectorAccumulation));
    std::printf("  %-5s %10s %7s %7s %16s\n", "PC", "sigma", "var", "cum",
                "rank-k resid");
    double acc = 0.0;
    const auto npc = std::min<index_t>(10, static_cast<index_t>(rep.values.size()));
    for (index_t k = 0; k < npc; ++k) {
      const double sv = rep.values[static_cast<std::size_t>(k)];
      const double ev = sv * sv / total;
      acc += ev;
      std::printf("  PC%-3lld %10.3f %6.1f%% %6.1f%% %15.4f%s\n",
                  static_cast<long long>(k + 1), sv, 100.0 * ev, 100.0 * acc,
                  rank_k_residual(x, rep, k + 1),
                  k + 1 == latent ? "   <- latent dim" : "");
    }
    // Sample scores on the first two REAL principal components:
    // score = U_k * sigma_k (equivalently X * V_k).
    if (npc >= 2) {
      std::printf("  first sample scores (PC1, PC2): ");
      for (index_t i = 0; i < std::min<index_t>(3, m); ++i) {
        std::printf("(%.2f, %.2f) ", rep.u(i, 0) * rep.values[0],
                    rep.u(i, 1) * rep.values[1]);
      }
      std::printf("\n");
    }
    return rep;
  };
  const auto rep32 = analyze(float{}, "FP32");
  const auto rep16 = analyze(Half{}, "FP16");

  // Principal-subspace agreement across precisions: the chordal distance
  // between the top-latent right subspaces, || V32 V32^T - V16 V16^T ||_F.
  const index_t top = std::min(latent, std::min(m, n));
  double sub = 0.0;
  for (index_t a = 0; a < n; ++a) {
    for (index_t b = 0; b < n; ++b) {
      double p32 = 0.0;
      double p16 = 0.0;
      for (index_t r = 0; r < top; ++r) {
        p32 += rep32.vt(r, a) * rep32.vt(r, b);
        p16 += rep16.vt(r, a) * rep16.vt(r, b);
      }
      sub += (p32 - p16) * (p32 - p16);
    }
  }
  std::printf(
      "\nFP32 vs FP16 principal-subspace distance (top %lld): %.3e\n"
      "Expected: a sharp rank-%lld residual collapse in both precisions and a\n"
      "small subspace distance — FP16 storage preserves the latent structure.\n",
      static_cast<long long>(top), std::sqrt(sub), static_cast<long long>(latent));
  return 0;
}
