/// PCA on a tall data matrix — now through the randomized truncated SVD
/// (src/rsvd): PCA only needs the top principal components, exactly the
/// regime where sketch -> power-iterate -> project beats the dense
/// pipeline by an order of magnitude on tall data.
///
/// A synthetic dataset of m samples x n features is drawn from a
/// low-dimensional latent model plus noise. The example runs BOTH paths —
/// svd_truncated at a small rank and the dense svd with SvdJob::Thin — and
/// reports the speedup, the explained-variance profile from the truncated
/// spectrum, rank-k reconstruction residuals, REAL sample scores from the
/// truncated factors, and the chordal distance between the principal
/// subspaces of the two paths (near zero: the cheap path finds the same
/// components). Run in FP32 and FP16 to show reduced precision preserves
/// the latent structure.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/linalg_ref.hpp"
#include "core/svd.hpp"
#include "example_util.hpp"
#include "rand/matrix_gen.hpp"
#include "rand/rng.hpp"

using namespace unisvd;
using example_util::subspace_distance;
using example_util::trunc_rank_k_residual;

int main(int argc, char** argv) {
  const index_t m = argc > 1 ? std::atoll(argv[1]) : 2048;  // samples
  const index_t n = argc > 2 ? std::atoll(argv[2]) : 128;   // features
  const index_t latent = 6;
  const index_t rank = 16;  // truncated solve: comfortably above the latent dim
  std::printf(
      "PCA: %lld samples x %lld features, latent dimension %lld + noise\n"
      "truncated rank %lld (svd_truncated) vs dense SvdJob::Thin\n",
      static_cast<long long>(m), static_cast<long long>(n),
      static_cast<long long>(latent), static_cast<long long>(rank));

  // X = L F + noise: L (m x latent) latent coordinates, F (latent x n)
  // feature loadings of decaying strength.
  rnd::Xoshiro256 rng(31);
  const auto l = rnd::gaussian_matrix(m, latent, rng);
  const auto f = rnd::gaussian_matrix(latent, n, rng);
  Matrix<double> x(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double v = 0.05 * rng.normal();  // noise floor
      for (index_t k = 0; k < latent; ++k) {
        v += l(i, k) * f(k, j) * std::pow(0.6, static_cast<double>(k));
      }
      x(i, j) = v;
    }
  }
  // Center columns.
  for (index_t j = 0; j < n; ++j) {
    double mean = 0.0;
    for (index_t i = 0; i < m; ++i) mean += x(i, j);
    mean /= static_cast<double>(m);
    for (index_t i = 0; i < m; ++i) x(i, j) -= mean;
  }

  const auto analyze = [&](auto tag, const char* name) {
    using T = decltype(tag);
    const Matrix<T> xt = rnd::round_to<T>(x);

    TruncConfig tcfg;
    tcfg.rank = rank;
    tcfg.svd.auto_scale = true;  // data scale is arbitrary
    const auto trep = svd_truncated_report<T>(xt.view(), tcfg);

    SvdConfig dcfg;
    dcfg.auto_scale = true;
    dcfg.job = SvdJob::Thin;  // the dense reference path
    const auto drep = svd_report<T>(xt.view(), dcfg);

    const double t_trunc = trep.stage_times.total();
    const double t_dense = drep.stage_times.total();
    std::printf(
        "\n%s: truncated %.0f ms (sketch %.0f ms) vs dense %.0f ms -> %.1fx "
        "speedup\n",
        name, 1e3 * t_trunc,
        1e3 * trep.stage_times.get(ka::Stage::RandomizedSketch), 1e3 * t_dense,
        t_dense / t_trunc);
    double total = 0.0;
    for (double s : drep.values) total += s * s;
    std::printf("  %-5s %10s %7s %7s %16s\n", "PC", "sigma", "var", "cum",
                "rank-k resid");
    double acc = 0.0;
    const auto npc = std::min<index_t>(10, trep.rank);
    for (index_t k = 0; k < npc; ++k) {
      const double sv = trep.values[static_cast<std::size_t>(k)];
      const double ev = sv * sv / total;
      acc += ev;
      std::printf("  PC%-3lld %10.3f %6.1f%% %6.1f%% %15.4f%s\n",
                  static_cast<long long>(k + 1), sv, 100.0 * ev, 100.0 * acc,
                  trunc_rank_k_residual(x, trep, k + 1),
                  k + 1 == latent ? "   <- latent dim" : "");
    }
    // Sample scores on the first two REAL principal components, from the
    // truncated factors: score = U_k * sigma_k (equivalently X * V_k).
    if (npc >= 2) {
      std::printf("  first sample scores (PC1, PC2): ");
      for (index_t i = 0; i < std::min<index_t>(3, m); ++i) {
        std::printf("(%.2f, %.2f) ", trep.u(i, 0) * trep.values[0],
                    trep.u(i, 1) * trep.values[1]);
      }
      std::printf("\n");
    }
    // Truncated vs dense principal subspace (top latent components): the
    // chordal distance || V_t V_t^T - V_d V_d^T ||_F must be tiny — the
    // cheap path found the same components.
    const double dist = subspace_distance(trep.vt, drep.vt, latent);
    std::printf("  truncated-vs-dense subspace distance (top %lld): %.3e\n",
                static_cast<long long>(latent), dist);
    return trep;
  };
  const auto rep32 = analyze(float{}, "FP32");
  const auto rep16 = analyze(Half{}, "FP16");

  // Principal-subspace agreement across precisions (both truncated).
  const double sub = subspace_distance(rep32.vt, rep16.vt,
                                       std::min(latent, std::min(m, n)));
  std::printf(
      "\nFP32 vs FP16 principal-subspace distance (top %lld): %.3e\n"
      "Expected: a sharp rank-%lld residual collapse, a large truncated-path\n"
      "speedup, and tiny subspace distances — the randomized path in FP16\n"
      "storage still recovers the latent structure.\n",
      static_cast<long long>(std::min(latent, std::min(m, n))), sub,
      static_cast<long long>(latent));
  return 0;
}
