/// Hierarchical-matrix style block compression: tile a smooth kernel matrix
/// into tiny blocks, thin-SVD every block in batched calls, and truncate
/// each block to the numerical rank its singular values reveal. This is the
/// workload the fused small_svd path exists for — hundreds of thousands of
/// 16x16 problems where per-problem pipeline overhead (tile padding,
/// per-stage launches) would dominate the arithmetic. Every block solve
/// should report small_path = true; the example prints the fraction as a
/// sanity check alongside problems/sec and the achieved compression ratio.
///
///   $ ./hmatrix_compress [n = 5120] [block = 16] [threads]
///
/// Defaults give (5120/16)^2 = 102400 block SVDs. ErrorPolicy::Isolate
/// keeps one bad block (none here, but real assembly codes see them) from
/// aborting the sweep.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/batch.hpp"

using namespace unisvd;

namespace {

/// Smooth long-range kernel K(i, j) = 1 / (1 + |i - j| / n): blocks away
/// from the diagonal are numerically low rank — the structure H-matrix
/// compression exploits.
Matrix<float> kernel_matrix(index_t n) {
  Matrix<float> a(n, n);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (index_t j = 0; j < n; ++j) {
    float* col = a.data() + j * n;
    for (index_t i = 0; i < n; ++i) {
      const double d = std::abs(static_cast<double>(i - j)) * inv_n;
      col[i] = static_cast<float>(1.0 / (1.0 + d));
    }
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 5120;
  const index_t block = argc > 2 ? std::atoll(argv[2]) : 16;
  const int threads_arg = argc > 3 ? std::atoi(argv[3]) : 0;
  const unsigned threads = threads_arg > 0 ? static_cast<unsigned>(threads_arg) : 0;
  if (n <= 0 || block <= 0 || n % block != 0) {
    std::fprintf(stderr, "usage: %s [n] [block] [threads] with block | n\n", argv[0]);
    return 1;
  }
  ka::CpuBackend backend(threads);
  const index_t nb = n / block;
  std::printf("unisvd h-matrix compression demo — %lldx%lld kernel matrix, "
              "%lldx%lld blocks of %lldx%lld, pool of %u threads\n",
              static_cast<long long>(n), static_cast<long long>(n),
              static_cast<long long>(nb), static_cast<long long>(nb),
              static_cast<long long>(block), static_cast<long long>(block),
              backend.pool().size());

  const Matrix<float> a = kernel_matrix(n);

  // Batched thin SVD over the blocks, one block-row strip per call: the
  // views alias the big matrix directly (ld = n, no copies), and chunking
  // bounds the live factor memory to one strip of reports. InterProblem is
  // the right schedule for a uniform tiny batch — one problem per pool
  // slot, the regime the fused path's dispatch extent feeds (see
  // extents_of in core/batch.cpp).
  BatchConfig cfg;
  cfg.svd.job = SvdJob::Thin;
  cfg.schedule = BatchSchedule::InterProblem;
  cfg.on_error = ErrorPolicy::Isolate;

  const double rel_tol = 1e-4;  // keep sigma_k > rel_tol * sigma_1(block)
  std::size_t solved = 0;
  std::size_t failed = 0;
  std::size_t small_path_count = 0;
  std::size_t dense_entries = 0;
  std::size_t compressed_entries = 0;
  double wall = 0.0;

  for (index_t bi = 0; bi < nb; ++bi) {
    std::vector<ConstMatrixView<float>> strip;
    strip.reserve(static_cast<std::size_t>(nb));
    for (index_t bj = 0; bj < nb; ++bj) {
      strip.emplace_back(a.data() + bi * block + bj * block * n, block, block, n);
    }
    const auto t0 = std::chrono::steady_clock::now();
    const BatchReport rep = svd_batched_report<float>(strip, cfg, backend);
    wall += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();

    for (const SvdReport& r : rep.reports) {
      ++solved;
      if (r.status != SvdStatus::Ok) {
        ++failed;
        continue;
      }
      if (r.small_path) ++small_path_count;
      // Numerical rank at rel_tol, then store the factors only when they
      // are actually smaller than the dense block: r * (2b + 1) vs b^2.
      const double cutoff = rel_tol * r.values.front();
      const auto rank = static_cast<std::size_t>(
          std::count_if(r.values.begin(), r.values.end(),
                        [&](double s) { return s > cutoff; }));
      const auto b = static_cast<std::size_t>(block);
      const std::size_t dense = b * b;
      const std::size_t factored = rank * (2 * b + 1);
      dense_entries += dense;
      compressed_entries += std::min(dense, factored);
    }
  }

  const double rate = wall > 0.0 ? static_cast<double>(solved) / wall : 0.0;
  std::printf("\n%zu block SVDs in %.2f s — %.0f problems/s, %zu failed\n", solved,
              wall, rate, failed);
  std::printf("fused small_svd path: %zu/%zu blocks (%.1f%%)\n", small_path_count,
              solved, 100.0 * static_cast<double>(small_path_count) /
                          static_cast<double>(solved));
  std::printf("storage: %zu dense entries -> %zu factored (compression %.2fx at "
              "rel tol %.0e)\n",
              dense_entries, compressed_entries,
              static_cast<double>(dense_entries) /
                  static_cast<double>(std::max<std::size_t>(compressed_entries, 1)),
              rel_tol);

  // The whole point of the fused path is that EVERY block here takes it;
  // treat anything else (or any failed block) as an example failure.
  return (failed == 0 && small_path_count == solved) ? 0 : 1;
}
