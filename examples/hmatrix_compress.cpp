/// Hierarchical-matrix style block compression as a SERVING-LAYER stress
/// client: tile a smooth kernel matrix into tiny blocks and push every
/// block through serve::SvdService — ~10^5 asynchronous thin-SVD
/// submissions whose solves all take the fused small_svd path. The kernel
/// K(i, j) = 1 / (1 + |i - j| / n) is block-Toeplitz: a block depends only
/// on its diagonal offset bi - bj, so an n/b x n/b tiling has just
/// 2*(n/b) - 1 DISTINCT blocks. The service's content-addressed result
/// cache discovers that equivalence on its own — the example asserts the
/// overwhelming majority of submissions are served from cache, every block
/// completes Ok on the fused path, and the admission counters conserve
/// every submission.
///
///   $ ./hmatrix_compress [n = 5120] [block = 16] [workers]
///
/// Defaults give (5120/16)^2 = 102400 block submissions. Exit is non-zero
/// when any block fails, misses the fused path, the cache never hits, or a
/// submission is lost or duplicated.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "serve/svd_service.hpp"

using namespace unisvd;

namespace {

/// Smooth long-range kernel K(i, j) = 1 / (1 + |i - j| / n): blocks away
/// from the diagonal are numerically low rank — the structure H-matrix
/// compression exploits — and entries depend only on i - j, so the block
/// grid is Toeplitz.
Matrix<float> kernel_matrix(index_t n) {
  Matrix<float> a(n, n);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (index_t j = 0; j < n; ++j) {
    float* col = a.data() + j * n;
    for (index_t i = 0; i < n; ++i) {
      const double d = std::abs(static_cast<double>(i - j)) * inv_n;
      col[i] = static_cast<float>(1.0 / (1.0 + d));
    }
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 5120;
  const index_t block = argc > 2 ? std::atoll(argv[2]) : 16;
  const int workers_arg = argc > 3 ? std::atoi(argv[3]) : 0;
  if (n <= 0 || block <= 0 || n % block != 0) {
    std::fprintf(stderr, "usage: %s [n] [block] [workers] with block | n\n",
                 argv[0]);
    return 1;
  }
  const index_t nb = n / block;

  serve::ServeConfig scfg;
  scfg.workers = workers_arg > 0 ? static_cast<std::size_t>(workers_arg) : 2;
  scfg.queue_capacity = 512;
  scfg.max_wave = 64;
  scfg.admission = serve::AdmissionPolicy::Block;
  // Large enough to hold every distinct Toeplitz block: after the first
  // block-row warms it, whole strips are served without a single solve.
  scfg.cache_capacity = static_cast<std::size_t>(2 * nb - 1);
  serve::SvdService svc(scfg);

  std::printf("unisvd h-matrix compression demo — %lldx%lld kernel matrix, "
              "%lldx%lld blocks of %lldx%lld through SvdService "
              "(%zu workers, cache %zu)\n",
              static_cast<long long>(n), static_cast<long long>(n),
              static_cast<long long>(nb), static_cast<long long>(nb),
              static_cast<long long>(block), static_cast<long long>(block),
              static_cast<std::size_t>(scfg.workers), scfg.cache_capacity);

  const Matrix<float> a = kernel_matrix(n);

  SvdConfig cfg;
  cfg.job = SvdJob::Thin;

  const double rel_tol = 1e-4;  // keep sigma_k > rel_tol * sigma_1(block)
  std::size_t solved = 0;
  std::size_t failed = 0;
  std::size_t small_path_count = 0;
  std::size_t dense_entries = 0;
  std::size_t compressed_entries = 0;

  const auto t0 = std::chrono::steady_clock::now();
  // One block-row strip at a time: submit the whole strip asynchronously
  // (views alias the big matrix, ld = n — the service copies each block at
  // admission, so the strip's handles are independent of `a`'s lifetime),
  // then consume the results. In-flight handles stay bounded by nb.
  std::vector<serve::JobHandle> strip;
  strip.reserve(static_cast<std::size_t>(nb));
  for (index_t bi = 0; bi < nb; ++bi) {
    strip.clear();
    const serve::SubmitOptions opt{
        .tenant = static_cast<std::uint32_t>(bi % 4)};
    for (index_t bj = 0; bj < nb; ++bj) {
      strip.push_back(svc.submit<float>(
          ConstMatrixView<float>(a.data() + bi * block + bj * block * n,
                                 block, block, n),
          cfg, opt));
    }
    for (serve::JobHandle& h : strip) {
      const SvdReport& r = h.report();  // waits
      ++solved;
      if (r.status != SvdStatus::Ok) {
        ++failed;
        continue;
      }
      if (r.small_path) ++small_path_count;
      // Numerical rank at rel_tol, then store the factors only when they
      // are actually smaller than the dense block: r * (2b + 1) vs b^2.
      const double cutoff = rel_tol * r.values.front();
      const auto rank = static_cast<std::size_t>(
          std::count_if(r.values.begin(), r.values.end(),
                        [&](double s) { return s > cutoff; }));
      const auto b = static_cast<std::size_t>(block);
      const std::size_t dense = b * b;
      const std::size_t factored = rank * (2 * b + 1);
      dense_entries += dense;
      compressed_entries += std::min(dense, factored);
    }
  }
  svc.shutdown(serve::DrainMode::Drain);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const serve::ServeStats stats = svc.stats();

  const double rate = wall > 0.0 ? static_cast<double>(solved) / wall : 0.0;
  std::printf("\n%zu block submissions in %.2f s — %.0f blocks/s, %zu failed\n",
              solved, wall, rate, failed);
  std::printf("fused small_svd path: %zu/%zu blocks (%.1f%%)\n",
              small_path_count, solved,
              100.0 * static_cast<double>(small_path_count) /
                  static_cast<double>(solved));
  std::printf("service: %llu physical solves, %llu cache hits, %llu "
              "coalesced (%.1f%% served without a solve)\n",
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.coalesced),
              100.0 *
                  static_cast<double>(stats.cache_hits + stats.coalesced) /
                  static_cast<double>(solved));
  std::printf("storage: %zu dense entries -> %zu factored (compression %.2fx "
              "at rel tol %.0e)\n",
              dense_entries, compressed_entries,
              static_cast<double>(dense_entries) /
                  static_cast<double>(
                      std::max<std::size_t>(compressed_entries, 1)),
              rel_tol);

  // The whole point of the fused path is that EVERY block takes it, and the
  // whole point of the content-addressed cache is that the Toeplitz
  // structure collapses 10^5 submissions onto ~2*nb distinct solves; treat
  // anything else — or a lost/duplicated submission — as an example failure.
  const bool conserved =
      stats.accepted + stats.cache_hits + stats.coalesced ==
          static_cast<std::uint64_t>(solved) &&
      stats.completed == stats.accepted && stats.failed == 0;
  const bool ok = failed == 0 && small_path_count == solved &&
                  stats.cache_hits > 0 && conserved;
  if (!ok) std::fprintf(stderr, "hmatrix_compress: acceptance gates FAILED\n");
  return ok ? 0 : 1;
}
