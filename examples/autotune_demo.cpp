/// Hyperparameter autotuning demo (paper §3.3): brute-force search over
/// TILESIZE x COLPERBLOCK on the executing CPU backend, ranked by measured
/// Phase-1 wall clock — the same procedure the paper ran per GPU and
/// precision, applied to the live backend of this machine.
///
///   $ ./autotune_demo [n]

#include <cstdio>
#include <cstdlib>

#include "core/svd.hpp"
#include "core/tuner.hpp"
#include "rand/matrix_gen.hpp"

using namespace unisvd;

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 512;
  ka::CpuBackend be;

  std::printf("autotuning Phase-1 on the CPU backend, n = %lld, FP32\n",
              static_cast<long long>(n));
  const auto result = core::autotune<float>(be, n, {}, /*repeats=*/2);

  std::printf("\n%-10s %-12s %-8s %12s %10s\n", "TILESIZE", "COLPERBLOCK", "SPLITK",
              "seconds", "vs best");
  for (const auto& e : result.all) {
    std::printf("%-10d %-12d %-8d %12.4f %9.2fx\n", e.config.tilesize,
                e.config.colperblock, e.config.splitk, e.seconds,
                e.seconds / result.all.front().seconds);
  }

  std::printf("\nbest: TILESIZE=%d COLPERBLOCK=%d SPLITK=%d\n", result.best.tilesize,
              result.best.colperblock, result.best.splitk);

  // Persist the winner: the next process loads it (core::TuningTable) and
  // gets a measurement-backed default, the runtime analogue of the
  // compile-time sim::tuned_kernel_config device tables.
  core::TuningTable table = core::TuningTable::load("unisvd_tuning.txt");
  table.set_kernels(be.name(), Precision::FP32, result.best);
  if (table.save("unisvd_tuning.txt")) {
    std::printf("persisted to unisvd_tuning.txt (kernels %s FP32)\n",
                std::string(be.name()).c_str());
  }

  // Use the tuned configuration for a full solve.
  rnd::Xoshiro256 rng(3);
  const auto a64 = rnd::gaussian_matrix(n, n, rng);
  const auto a = rnd::round_to<float>(a64);
  SvdConfig cfg;
  cfg.kernels = table.kernels_or(be.name(), Precision::FP32, result.best);
  const auto rep = svd_values_report<float>(a.view(), cfg, be);
  std::printf("full pipeline with tuned config: %.1f ms (sigma_1 = %.4f)\n",
              1e3 * rep.stage_times.total(), rep.values.front());
  std::printf(
      "\nTakeaway (paper §3.3): up to ~50%% swing from a single parameter —\n"
      "tuning, not rewriting, is how the unified kernels port.\n");
  return 0;
}
