/// Quickstart: compute the singular values of a random dense matrix with
/// the unified API, in three storage precisions, and check them against a
/// known constructed spectrum.
///
///   $ ./quickstart [n]
///
/// Mirrors the paper's headline usage: ONE function, any element type, any
/// execution backend (here the multithreaded CPU backend).

#include <cstdio>
#include <cstdlib>

#include "common/linalg_ref.hpp"
#include "core/svd.hpp"
#include "rand/matrix_gen.hpp"
#include "rand/spectrum.hpp"

using namespace unisvd;

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 256;
  std::printf("unisvd quickstart: singular values of a %lld x %lld matrix\n",
              static_cast<long long>(n), static_cast<long long>(n));

  // Build A = U * diag(sigma) * V^T with a known logarithmic spectrum.
  rnd::Xoshiro256 rng(7);
  const auto sigma = rnd::logarithmic_spectrum(n, 3.0);
  const Matrix<double> a64 =
      n <= 512 ? rnd::matrix_with_spectrum(sigma, rng)
               : rnd::matrix_with_spectrum_fast(sigma, rng);

  // The SAME call, specialized per storage type at compile time — the C++
  // counterpart of the paper's type-agnostic Julia svdvals.
  const auto run = [&](auto tag, const char* name) {
    using T = decltype(tag);
    const Matrix<T> a = rnd::round_to<T>(a64);
    const auto rep = svd_values_report<T>(a.view());
    std::printf("%-5s sigma_1 = %.6f  sigma_n = %.3e  rel.err = %.2e  (%.1f ms)\n",
                name, rep.values.front(), rep.values.back(),
                ref::rel_sv_error(rep.values, sigma),
                1e3 * rep.stage_times.total());
  };
  run(double{}, "FP64");
  run(float{}, "FP32");
  run(Half{}, "FP16");

  std::printf("\nExpected: identical leading digits, error levels ~1e-15 / 1e-7 /"
              " 1e-3 per precision.\n");
  return 0;
}
