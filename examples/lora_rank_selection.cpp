/// LoRA-style rank selection — the machine-learning motivation from the
/// paper's introduction: low-rank adaptation needs the singular spectrum of
/// weight matrices to pick an adapter rank that retains a target fraction
/// of the spectral energy, increasingly in reduced precision.
///
/// This example builds a synthetic "attention projection" weight matrix
/// with a realistic heavy-tailed spectrum plus noise, computes its singular
/// values with the unified solver in FP32 and FP16, and reports the rank
/// needed to retain 90% / 95% / 99% of the energy in each precision —
/// demonstrating that FP16 storage is sufficient for rank selection.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/svd.hpp"
#include "rand/matrix_gen.hpp"

using namespace unisvd;

namespace {

/// Rank needed so that sum of sigma_i^2 over the first r values reaches
/// `fraction` of the total.
index_t rank_for_energy(const std::vector<double>& sv, double fraction) {
  double total = 0.0;
  for (double s : sv) total += s * s;
  double acc = 0.0;
  for (std::size_t i = 0; i < sv.size(); ++i) {
    acc += sv[i] * sv[i];
    if (acc >= fraction * total) return static_cast<index_t>(i + 1);
  }
  return static_cast<index_t>(sv.size());
}

}  // namespace

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 512;
  std::printf("LoRA rank selection on a synthetic %lld x %lld weight matrix\n",
              static_cast<long long>(n), static_cast<long long>(n));

  // Power-law spectrum (trained-weight-like) + small isotropic noise floor.
  std::vector<double> sigma(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    sigma[static_cast<std::size_t>(i)] =
        std::pow(static_cast<double>(i + 1), -0.8) + 5e-4;
  }
  rnd::Xoshiro256 rng(2024);
  const Matrix<double> w64 = rnd::matrix_with_spectrum_fast(sigma, rng);

  const auto report = [&](auto tag, const char* name) {
    using T = decltype(tag);
    const Matrix<T> w = rnd::round_to<T>(w64);
    const auto rep = svd_values_report<T>(w.view());
    std::printf("\n%s storage (%.1f ms, %zu values)\n", name,
                1e3 * rep.stage_times.total(), rep.values.size());
    for (double frac : {0.90, 0.95, 0.99}) {
      std::printf("  rank retaining %2.0f%% energy: %lld\n", 100.0 * frac,
                  static_cast<long long>(rank_for_energy(rep.values, frac)));
    }
    return rep.values;
  };

  const auto sv32 = report(float{}, "FP32");
  const auto sv16 = report(Half{}, "FP16");

  // Agreement of the selected ranks across precisions.
  std::printf("\nFP16 vs FP32 rank agreement:\n");
  for (double frac : {0.90, 0.95, 0.99}) {
    const auto r32 = rank_for_energy(sv32, frac);
    const auto r16 = rank_for_energy(sv16, frac);
    std::printf("  %2.0f%%: FP32 -> %-5lld FP16 -> %-5lld (delta %+lld)\n",
                100.0 * frac, static_cast<long long>(r32),
                static_cast<long long>(r16), static_cast<long long>(r16 - r32));
  }
  std::printf(
      "\nTakeaway (paper §1): half-precision singular spectra are accurate\n"
      "enough to drive LoRA rank choices at half the memory cost.\n");
  return 0;
}
