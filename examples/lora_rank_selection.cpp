/// LoRA-style rank selection — the machine-learning motivation from the
/// paper's introduction, now on the randomized truncated SVD (src/rsvd):
/// adapter construction needs only the top of the spectrum, so the
/// tolerance-driven adaptive-rank mode of svd_truncated finds the adapter
/// rank AND materializes the factors without ever paying for the full
/// factorization.
///
/// This example builds a synthetic "attention projection" weight matrix
/// with a realistic heavy-tailed spectrum plus noise, then in FP32 and
/// FP16:
///   * runs svd_truncated in adaptive mode (tol picks the rank where the
///     spectrum falls below 3% of sigma_1),
///   * materializes the REAL LoRA factors A = U_r sqrt(S_r),
///     B = sqrt(S_r) V_r^T and verifies || W - A B ||_F / || W ||_F,
///   * compares rank choice, adapter residual, subspace and runtime against
///     the dense SvdJob::Thin path.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/linalg_ref.hpp"
#include "core/svd.hpp"
#include "example_util.hpp"
#include "rand/matrix_gen.hpp"

using namespace unisvd;

namespace {

/// Rank needed so that sum of sigma_i^2 over the first r values reaches
/// `fraction` of the total (evaluated on the DENSE spectrum — the oracle
/// the truncated path is compared against).
index_t rank_for_energy(const std::vector<double>& sv, double fraction) {
  double total = 0.0;
  for (double s : sv) total += s * s;
  double acc = 0.0;
  for (std::size_t i = 0; i < sv.size(); ++i) {
    acc += sv[i] * sv[i];
    if (acc >= fraction * total) return static_cast<index_t>(i + 1);
  }
  return static_cast<index_t>(sv.size());
}

}  // namespace

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 512;
  const double tol = 0.03;  // keep components above 3% of sigma_1
  std::printf(
      "LoRA rank selection on a synthetic %lld x %lld weight matrix\n"
      "adaptive svd_truncated (tol %.0f%% of sigma_1) vs dense SvdJob::Thin\n",
      static_cast<long long>(n), static_cast<long long>(n), 100.0 * tol);

  // Power-law spectrum (trained-weight-like) + small isotropic noise floor.
  std::vector<double> sigma(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    sigma[static_cast<std::size_t>(i)] =
        std::pow(static_cast<double>(i + 1), -0.8) + 5e-4;
  }
  rnd::Xoshiro256 rng(2024);
  const Matrix<double> w64 = rnd::matrix_with_spectrum_fast(sigma, rng);

  const auto report = [&](auto tag, const char* name) {
    using T = decltype(tag);
    const Matrix<T> w = rnd::round_to<T>(w64);

    TruncConfig tcfg;
    tcfg.rank = 64;  // initial sketch guess; the tolerance drives the rank
    tcfg.tol = tol;
    const auto trep = svd_truncated_report<T>(w.view(), tcfg);

    SvdConfig dcfg;
    dcfg.job = SvdJob::Thin;  // dense reference
    const auto drep = svd_report<T>(w.view(), dcfg);

    const double t_trunc = trep.stage_times.total();
    const double t_dense = drep.stage_times.total();
    std::printf(
        "\n%s: adaptive truncated %.0f ms vs dense %.0f ms -> %.1fx speedup\n"
        "  chose rank %lld (sketch %lld cols, %d growth rounds, "
        "sigma_tail/sigma_1 = %.3f)\n",
        name, 1e3 * t_trunc, 1e3 * t_dense, t_dense / t_trunc,
        static_cast<long long>(trep.rank),
        static_cast<long long>(trep.sketch_cols), trep.adaptive_rounds,
        trep.sigma_tail / trep.values[0]);

    // The materialized adapter: A = U_r sqrt(S_r), B = sqrt(S_r) V_r^T;
    // the reported residual is exactly || W - A B || / || W ||.
    std::printf("  adapter residual || W - A B || / || W ||: %.4f\n",
                example_util::trunc_rank_k_residual(w64, trep, trep.rank));

    // Energy view: where the truncated rank lands on the dense profile.
    std::printf("  dense-oracle energy ranks:  ");
    for (double frac : {0.90, 0.95, 0.99}) {
      std::printf("%2.0f%% -> %-5lld", 100.0 * frac,
                  static_cast<long long>(rank_for_energy(drep.values, frac)));
    }
    std::printf("\n");

    // Truncated vs dense subspace agreement over the well-separated head
    // (the full adapter span includes noise-degenerate tail directions
    // whose individual vectors are not unique — the head is the fair test).
    const index_t head = std::min<index_t>(16, trep.rank);
    std::printf("  truncated-vs-dense subspace distance (top %lld): %.3e\n",
                static_cast<long long>(head),
                example_util::subspace_distance(trep.vt, drep.vt, head));
    return trep;
  };

  const auto rep32 = report(float{}, "FP32");
  const auto rep16 = report(Half{}, "FP16");

  std::printf(
      "\nFP16 vs FP32 adaptive rank: %lld vs %lld\n"
      "Takeaway (paper §1): the randomized adaptive path picks the adapter\n"
      "rank AND materializes A, B at a fraction of the dense cost — and\n"
      "half-precision storage still lands on the same rank and subspace.\n",
      static_cast<long long>(rep16.rank), static_cast<long long>(rep32.rank));
  return 0;
}
