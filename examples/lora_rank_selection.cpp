/// LoRA-style rank selection — the machine-learning motivation from the
/// paper's introduction: low-rank adaptation needs the singular spectrum of
/// weight matrices to pick an adapter rank that retains a target fraction
/// of the spectral energy, increasingly in reduced precision.
///
/// This example builds a synthetic "attention projection" weight matrix
/// with a realistic heavy-tailed spectrum plus noise, computes its full SVD
/// (U, Sigma, V^T) with the unified solver in FP32 and FP16, selects the
/// rank retaining 90% / 95% / 99% of the energy, and materializes the REAL
/// LoRA adapter factors A = U_r sqrt(S_r), B = sqrt(S_r) V_r^T — verifying
/// the achieved reconstruction error || W - A B ||_F / || W ||_F matches
/// the energy target in both precisions.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/linalg_ref.hpp"
#include "core/svd.hpp"
#include "example_util.hpp"
#include "rand/matrix_gen.hpp"

using namespace unisvd;

namespace {

/// Rank needed so that sum of sigma_i^2 over the first r values reaches
/// `fraction` of the total.
index_t rank_for_energy(const std::vector<double>& sv, double fraction) {
  double total = 0.0;
  for (double s : sv) total += s * s;
  double acc = 0.0;
  for (std::size_t i = 0; i < sv.size(); ++i) {
    acc += sv[i] * sv[i];
    if (acc >= fraction * total) return static_cast<index_t>(i + 1);
  }
  return static_cast<index_t>(sv.size());
}

}  // namespace

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 512;
  std::printf("LoRA rank selection on a synthetic %lld x %lld weight matrix\n",
              static_cast<long long>(n), static_cast<long long>(n));

  // Power-law spectrum (trained-weight-like) + small isotropic noise floor.
  std::vector<double> sigma(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    sigma[static_cast<std::size_t>(i)] =
        std::pow(static_cast<double>(i + 1), -0.8) + 5e-4;
  }
  rnd::Xoshiro256 rng(2024);
  const Matrix<double> w64 = rnd::matrix_with_spectrum_fast(sigma, rng);

  const auto report = [&](auto tag, const char* name) {
    using T = decltype(tag);
    const Matrix<T> w = rnd::round_to<T>(w64);
    SvdConfig cfg;
    cfg.job = SvdJob::Thin;  // adapters need the real factors
    const auto rep = svd_report<T>(w.view(), cfg);
    std::printf("\n%s storage (%.1f ms total, %.1f ms vector accumulation)\n", name,
                1e3 * rep.stage_times.total(),
                1e3 * rep.stage_times.get(ka::Stage::VectorAccumulation));
    std::printf("  %-18s %6s %22s\n", "energy target", "rank", "adapter ||W-AB||/||W||");
    for (double frac : {0.90, 0.95, 0.99}) {
      const index_t r = rank_for_energy(rep.values, frac);
      std::printf("  retain %2.0f%%        %6lld %21.4f\n", 100.0 * frac,
                  static_cast<long long>(r),
                  example_util::rank_k_residual(w64, rep, r));
    }
    return rep;
  };

  const auto rep32 = report(float{}, "FP32");
  const auto rep16 = report(Half{}, "FP16");

  // Agreement of the selected ranks across precisions.
  std::printf("\nFP16 vs FP32 rank agreement:\n");
  for (double frac : {0.90, 0.95, 0.99}) {
    const auto r32 = rank_for_energy(rep32.values, frac);
    const auto r16 = rank_for_energy(rep16.values, frac);
    std::printf("  %2.0f%%: FP32 -> %-5lld FP16 -> %-5lld (delta %+lld)\n",
                100.0 * frac, static_cast<long long>(r32),
                static_cast<long long>(r16), static_cast<long long>(r16 - r32));
  }
  std::printf(
      "\nTakeaway (paper §1): half-precision singular spectra — and now the\n"
      "adapter factors themselves — are accurate enough to drive LoRA rank\n"
      "choices at half the memory cost; the achieved ||W - AB|| tracks the\n"
      "energy target, sqrt(1 - frac), in both precisions.\n");
  return 0;
}
