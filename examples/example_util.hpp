#pragma once
/// Shared helpers for the example programs (not part of the library API).

#include "common/linalg_ref.hpp"
#include "core/svd.hpp"

namespace example_util {

using unisvd::ConstMatrixView;
using unisvd::Matrix;
using unisvd::SvdReport;
using unisvd::TruncReport;
using unisvd::index_t;

/// || X - U_k diag(s_k) Vt_k ||_F / || X ||_F: rank-k reconstruction
/// residual of a thin SVD report, measured in double against the
/// full-precision reference matrix. This is both PCA's rank-k model error
/// and the LoRA adapter residual || W - A B || with A = U_k sqrt(S_k),
/// B = sqrt(S_k) V_k^T.
inline double rank_k_residual(const Matrix<double>& x, const SvdReport& rep,
                              index_t k) {
  const double denom = unisvd::ref::fro_norm(x.view());
  const double diff =
      unisvd::ref::rank_k_residual_fro(x.view(), rep.u, rep.values, rep.vt, k);
  return denom == 0.0 ? diff : diff / denom;
}

/// rank_k_residual over a randomized truncated report (same metric; the
/// factor layout matches, only the report type differs). k must be <=
/// rep.rank.
inline double trunc_rank_k_residual(const Matrix<double>& x, const TruncReport& rep,
                                    index_t k) {
  const double denom = unisvd::ref::fro_norm(x.view());
  const double diff =
      unisvd::ref::rank_k_residual_fro(x.view(), rep.u, rep.values, rep.vt, k);
  return denom == 0.0 ? diff : diff / denom;
}

/// Chordal distance between the span of the first `top` rows of two
/// transposed right-factor matrices: || Va Va^T - Vb Vb^T ||_F over the
/// feature-space projectors. Near zero means both factorizations found the
/// same principal subspace (the metric the PCA and LoRA examples report).
inline double subspace_distance(const Matrix<double>& vta, const Matrix<double>& vtb,
                                index_t top) {
  const index_t n = std::min(vta.cols(), vtb.cols());
  const index_t r = std::min({top, vta.rows(), vtb.rows()});
  double s = 0.0;
  for (index_t a = 0; a < n; ++a) {
    for (index_t b = 0; b < n; ++b) {
      double pa = 0.0;
      double pb = 0.0;
      for (index_t k = 0; k < r; ++k) {
        pa += vta(k, a) * vta(k, b);
        pb += vtb(k, a) * vtb(k, b);
      }
      s += (pa - pb) * (pa - pb);
    }
  }
  return std::sqrt(s);
}

}  // namespace example_util
