#pragma once
/// Shared helpers for the example programs (not part of the library API).

#include "common/linalg_ref.hpp"
#include "core/svd.hpp"

namespace example_util {

using unisvd::ConstMatrixView;
using unisvd::Matrix;
using unisvd::SvdReport;
using unisvd::index_t;

/// || X - U_k diag(s_k) Vt_k ||_F / || X ||_F: rank-k reconstruction
/// residual of a thin SVD report, measured in double against the
/// full-precision reference matrix. This is both PCA's rank-k model error
/// and the LoRA adapter residual || W - A B || with A = U_k sqrt(S_k),
/// B = sqrt(S_k) V_k^T.
inline double rank_k_residual(const Matrix<double>& x, const SvdReport& rep,
                              index_t k) {
  Matrix<double> us(rep.u.rows(), k);
  for (index_t j = 0; j < k; ++j) {
    const double s = rep.values[static_cast<std::size_t>(j)];
    for (index_t i = 0; i < us.rows(); ++i) us(i, j) = rep.u(i, j) * s;
  }
  // First k rows of vt as a view (column-major: same data, shorter column).
  const ConstMatrixView<double> vt_k(rep.vt.data(), k, rep.vt.cols(), rep.vt.rows());
  const Matrix<double> recon =
      unisvd::ref::matmul(ConstMatrixView<double>(us.view()), vt_k);
  const double denom = unisvd::ref::fro_norm(x.view());
  const double diff = unisvd::ref::fro_diff(x.view(), recon.view());
  return denom == 0.0 ? diff : diff / denom;
}

}  // namespace example_util
