/// Batched SVD demo: a ragged batch of independent problems — the
/// serving-traffic regime — solved in one call, with the per-problem
/// scheduling decision, per-stage accounting, fault isolation
/// (ErrorPolicy::Isolate: one poisoned request cannot take down the batch)
/// and the empirically learned inter/intra crossover persisted in a
/// core::TuningTable.
///
///   $ ./batched_svd [threads]

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <vector>

#include "core/batch.hpp"
#include "core/tuner.hpp"
#include "rand/matrix_gen.hpp"

using namespace unisvd;

int main(int argc, char** argv) {
  const int threads_arg = argc > 1 ? std::atoi(argv[1]) : 0;
  const unsigned threads = threads_arg > 0 ? static_cast<unsigned>(threads_arg) : 0;
  ka::CpuBackend backend(threads);
  std::printf("unisvd batched demo — pool of %u threads\n", backend.pool().size());

  // Ragged batch: a mix of shapes, as a request queue would hand us. One
  // request arrives poisoned (a NaN payload) — with on_error = Isolate the
  // batch still serves every healthy request and reports the bad one.
  const std::pair<index_t, index_t> shapes[] = {
      {48, 48}, {16, 16}, {200, 200}, {32, 32}, {96, 40}, {40, 96}, {64, 64}};
  rnd::Xoshiro256 rng(5);
  std::vector<Matrix<double>> problems;
  std::vector<ConstMatrixView<double>> views;
  for (const auto& [m, n] : shapes) {
    problems.push_back(rnd::gaussian_matrix(m, n, rng));
    views.push_back(problems.back().view());
  }
  problems[3](1, 2) = std::numeric_limits<double>::quiet_NaN();  // poison one

  BatchConfig cfg;  // Mixed: small problems share the pool inter-problem,
                    // the 200x200 one gets work-stealing help for its
                    // kernel launches once the small queue dries up.
  cfg.schedule = BatchSchedule::Mixed;
  cfg.on_error = ErrorPolicy::Isolate;
  const auto rep = svd_values_batched_report<double>(views, cfg, backend);

  std::printf("\n%4s %9s %9s %14s %12s %12s\n", "#", "shape", "schedule", "status",
              "sigma_1", "sigma_min");
  for (std::size_t p = 0; p < views.size(); ++p) {
    char shape[32];
    std::snprintf(shape, sizeof(shape), "%lldx%lld",
                  static_cast<long long>(views[p].rows()),
                  static_cast<long long>(views[p].cols()));
    const auto& r = rep.reports[p];
    if (r.status == SvdStatus::Ok) {
      std::printf("%4zu %9s %9s %14s %12.6f %12.6f\n", p, shape,
                  to_string(rep.schedules[p]), to_string(r.status),
                  r.values.front(), r.values.back());
    } else {
      std::printf("%4zu %9s %9s %14s %12s %12s\n", p, shape,
                  to_string(rep.schedules[p]), to_string(r.status), "-", "-");
    }
  }
  std::printf("\n%zu/%zu problems ok; batch wall clock: %.2f ms, %zu distinct pool "
              "threads, summed stage time: %.2f ms\n",
              rep.reports.size() - rep.failed_count(), rep.reports.size(),
              1e3 * rep.seconds, rep.threads_used, 1e3 * rep.stage_times.total());

  // Learn the crossover for this machine instead of trusting the default,
  // persist it, and show the persisted value becoming the BatchConfig
  // default. Meaningless without a pool to run the inter schedule on.
  if (backend.pool().size() < 2) {
    std::printf("\npool width 1: skipping the crossover probe (pass a thread "
                "count >= 2 to see it)\n");
    return 0;
  }
  core::TuningTable table;
  (void)core::learn_batch_crossover<double>(table, backend, {32, 64, 128}, 6);
  const std::string table_path = "unisvd_tuning.txt";
  if (!table.save(table_path)) {
    std::printf("\ncould not write %s\n", table_path.c_str());
    return 1;
  }
  const auto reloaded = core::TuningTable::load(table_path);
  const BatchConfig tuned =
      core::tuned_batch_config(reloaded, backend, Precision::FP64);
  std::printf("\nlearned crossover persisted to %s and reloaded:\n"
              "  BatchConfig::crossover_n = %lld (static default %lld)\n",
              table_path.c_str(), static_cast<long long>(tuned.crossover_n),
              static_cast<long long>(BatchConfig{}.crossover_n));
  return 0;
}
