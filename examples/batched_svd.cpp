/// Batched SVD demo: a ragged batch of independent problems — the
/// serving-traffic regime — solved in one call, with the per-problem
/// scheduling decision, per-stage accounting and the empirically learned
/// inter/intra crossover.
///
///   $ ./batched_svd [threads]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/batch.hpp"
#include "core/tuner.hpp"
#include "rand/matrix_gen.hpp"

using namespace unisvd;

int main(int argc, char** argv) {
  const int threads_arg = argc > 1 ? std::atoi(argv[1]) : 0;
  const unsigned threads = threads_arg > 0 ? static_cast<unsigned>(threads_arg) : 0;
  ka::CpuBackend backend(threads);
  std::printf("unisvd batched demo — pool of %u threads\n", backend.pool().size());

  // Ragged batch: a mix of shapes, as a request queue would hand us.
  const std::pair<index_t, index_t> shapes[] = {
      {48, 48}, {16, 16}, {200, 200}, {32, 32}, {96, 40}, {40, 96}, {64, 64}};
  rnd::Xoshiro256 rng(5);
  std::vector<Matrix<double>> problems;
  std::vector<ConstMatrixView<double>> views;
  for (const auto& [m, n] : shapes) {
    problems.push_back(rnd::gaussian_matrix(m, n, rng));
    views.push_back(problems.back().view());
  }

  BatchConfig cfg;  // Auto schedule: small problems share the pool,
                    // the 200x200 one gets the whole backend to itself.
  const auto rep = svd_values_batched_report<double>(views, cfg, backend);

  std::printf("\n%4s %9s %9s %12s %12s\n", "#", "shape", "schedule", "sigma_1",
              "sigma_min");
  for (std::size_t p = 0; p < views.size(); ++p) {
    char shape[32];
    std::snprintf(shape, sizeof(shape), "%lldx%lld",
                  static_cast<long long>(views[p].rows()),
                  static_cast<long long>(views[p].cols()));
    std::printf("%4zu %9s %9s %12.6f %12.6f\n", p, shape,
                to_string(rep.schedules[p]), rep.reports[p].values.front(),
                rep.reports[p].values.back());
  }
  std::printf("\nbatch wall clock: %.2f ms, %zu distinct pool threads, "
              "summed stage time: %.2f ms\n",
              1e3 * rep.seconds, rep.threads_used, 1e3 * rep.stage_times.total());

  // Learn the crossover for this machine instead of trusting the default.
  // Meaningless without a pool to run the inter schedule on, so skip then.
  if (backend.pool().size() < 2) {
    std::printf("\npool width 1: skipping the crossover probe (pass a thread "
                "count >= 2 to see it)\n");
    return 0;
  }
  const auto tuned = core::tune_batch_crossover<double>(backend, {32, 64, 128}, 6);
  std::printf("\nschedule crossover probe (6 problems per size):\n");
  for (const auto& s : tuned.samples) {
    std::printf("  n=%4lld  inter %8.2f ms  intra %8.2f ms  -> %s wins\n",
                static_cast<long long>(s.n), 1e3 * s.inter_seconds,
                1e3 * s.intra_seconds,
                s.inter_seconds <= s.intra_seconds ? "inter" : "intra");
  }
  std::printf("learned BatchConfig::crossover_n = %lld (default %lld)\n",
              static_cast<long long>(tuned.crossover_n),
              static_cast<long long>(BatchConfig{}.crossover_n));
  return 0;
}
